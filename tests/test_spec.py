"""Tests for the canonical ``repro.spec/v1`` GenerationSpec.

Covers the invariants the serve/dist/jobs/CLI consumers rely on:
round-trip stability (dataclass -> dict -> dataclass, dataclass ->
JSON -> dataclass, dataclass -> dist wire -> dataclass), field-naming
validation errors, and the headline acceptance property — *one spec,
every consumer*: a spec dumped by the CLI drives ``generate --spec``
and ``job run --spec`` to the same bytes the flag path produces.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.spec import (
    ACCESS_MODES,
    SPEC_SCHEMA,
    GenerationSpec,
    SpecError,
)
from repro.io.npzio import load_surface


def conv_spec(**overrides):
    """A small but non-trivial convolution spec."""
    base = dict(
        generator={
            "kind": "convolution",
            "spectrum": {"kind": "gaussian", "h": 1.0,
                         "clx": 8.0, "cly": 8.0},
            "grid": {"nx": 64, "ny": 64, "lx": 64.0, "ly": 64.0},
            "truncation": 0.9999,
            "engine": "auto",
            "dtype": "float64",
        },
        seed=5,
        plan={"total_nx": 64, "total_ny": 64,
              "tile_nx": 32, "tile_ny": 32,
              "origin_x": 0, "origin_y": 0},
    )
    base.update(overrides)
    return GenerationSpec(**base)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = conv_spec()
        doc = spec.to_dict()
        assert doc["schema"] == SPEC_SCHEMA
        assert GenerationSpec.from_dict(doc) == spec

    def test_json_round_trip(self):
        spec = conv_spec(noise_block=128, obs=True)
        text = spec.to_json()
        again = GenerationSpec.from_json(text)
        assert again == spec
        # and the canonical document itself is stable
        assert again.to_json() == text

    def test_wire_round_trip(self):
        spec = conv_spec(store_path="/tmp/somewhere", access="shared")
        wire = spec.to_wire()
        # legacy dist field names, kept for deployed workers
        assert wire["rebuild"] == spec.generator
        assert wire["noise_seed"] == spec.seed
        assert GenerationSpec.from_wire(wire) == spec

    def test_wire_requires_store_for_shared(self):
        spec = conv_spec()  # no store_path, access defaults to shared
        with pytest.raises(SpecError, match="store_path"):
            spec.to_wire()

    def test_tile_shorthand(self):
        doc = conv_spec(plan=None).to_dict()
        doc.pop("plan")
        doc["tile"] = 16
        spec = GenerationSpec.from_dict(doc)
        assert spec.plan == {"total_nx": 64, "total_ny": 64,
                             "tile_nx": 16, "tile_ny": 16,
                             "origin_x": 0, "origin_y": 0}
        with pytest.raises(SpecError, match="tile"):
            GenerationSpec.from_dict({**doc, "plan": spec.plan})

    def test_invalid_json_is_spec_error(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            GenerationSpec.from_json("{nope")

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        tile=st.integers(min_value=1, max_value=64),
        noise_block=st.none() | st.integers(min_value=1, max_value=512),
        access=st.sampled_from(ACCESS_MODES),
        obs=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, seed, tile, noise_block, access,
                                 obs):
        spec = conv_spec(seed=seed, noise_block=noise_block, obs=obs,
                         access=access,
                         store_path="/s" if access == "shared" else None,
                         ).with_plan(tile)
        assert GenerationSpec.from_json(spec.to_json()) == spec
        assert GenerationSpec.from_wire(spec.to_wire()) == spec

    @given(
        sigma=st.floats(min_value=1e-3, max_value=1e3,
                        allow_nan=False, allow_infinity=False),
        hurst=st.floats(min_value=0.01, max_value=1.0,
                        allow_nan=False, allow_infinity=False),
        qr=st.none() | st.floats(min_value=1e-3, max_value=10.0,
                                 allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_self_affine_round_trip_property(self, sigma, hurst, qr, seed):
        """Self-affine spectra survive the spec round trip — including
        the optional roll-off wavevector (``qr: null`` in JSON) — and
        rebuild to an equal generator."""
        spec = conv_spec(seed=seed)
        generator = dict(spec.generator)
        generator["spectrum"] = {"kind": "self_affine", "sigma": sigma,
                                 "hurst": hurst, "qr": qr}
        spec = conv_spec(seed=seed, generator=generator, store_path="/s")
        again = GenerationSpec.from_json(spec.to_json())
        assert again == spec
        assert GenerationSpec.from_wire(spec.to_wire()) == spec
        rebuilt = again.build_generator().spectrum
        assert rebuilt.to_dict() == generator["spectrum"]


class TestValidationNamesField:
    @pytest.mark.parametrize("mutate, field_path", [
        (lambda d: d["generator"].pop("spectrum"), "generator.spectrum"),
        (lambda d: d["generator"].update(kind="warp"), "generator.kind"),
        (lambda d: d["generator"]["grid"].pop("ny"), "generator.grid.ny"),
        (lambda d: d["generator"]["grid"].update(nx=0), "generator.grid.nx"),
        (lambda d: d.update(seed="five"), "seed"),
        (lambda d: d["plan"].pop("tile_ny"), "plan.tile_ny"),
        (lambda d: d["plan"].update(tile_nx=0), "plan.tile_nx"),
        (lambda d: d["plan"].update(bogus=1), "plan.bogus"),
        (lambda d: d.update(noise_block=-1), "noise_block"),
        (lambda d: d.update(access="push"), "access"),
        (lambda d: d.update(schema="repro.spec/v0"), "schema"),
        (lambda d: d.update(surprise=1), "surprise"),
    ])
    def test_errors_name_offending_field(self, mutate, field_path):
        doc = conv_spec().to_dict()
        mutate(doc)
        with pytest.raises(SpecError) as exc:
            GenerationSpec.from_dict(doc)
        assert exc.value.field == field_path
        # the message leads with the dotted path, so CLI/HTTP surfaces
        # can show it verbatim
        assert str(exc.value).startswith(field_path)

    def test_faults_must_be_dicts(self):
        with pytest.raises(SpecError) as exc:
            conv_spec(faults=["drop"])
        assert exc.value.field == "faults"


class TestDerivedViews:
    def test_grid_shape_and_plan(self):
        spec = conv_spec()
        assert spec.grid_shape == (64, 64)
        plan = spec.tile_plan()
        assert len(plan) == 4
        assert conv_spec(plan=None).tile_plan() is None

    def test_noise_matches_seed(self):
        a = conv_spec(seed=11).noise().window(0, 0, 8, 8)
        b = conv_spec(seed=11).noise().window(0, 0, 8, 8)
        assert np.array_equal(a, b)

    def test_build_generator(self):
        gen = conv_spec().build_generator()
        assert gen.grid.shape == (64, 64)
        assert gen.spectrum.to_dict()["kind"] == "gaussian"


class TestRunSpecShim:
    def test_runspec_warns_and_delegates(self):
        from repro.dist.spec import RunSpec

        wire = conv_spec(store_path="/s").to_wire()
        with pytest.warns(DeprecationWarning, match="GenerationSpec"):
            spec = RunSpec.from_wire(wire)
        assert spec.noise_seed == 5
        assert spec.rebuild["kind"] == "convolution"


BASE_FLAGS = [
    "--spectrum", "gaussian", "--h", "1.0", "--cl", "8",
    "--n", "64", "--domain", "64", "--seed", "5",
]


class TestOneSpecEveryConsumer:
    """CLI ns -> spec -> dict -> spec -> identical surface."""

    def _dump_spec(self, capsys, extra=()):
        rc = main(["generate", *BASE_FLAGS, *extra, "--dump-spec"])
        assert rc == 0
        return capsys.readouterr().out

    def test_dump_spec_round_trips(self, capsys):
        text = self._dump_spec(capsys, ["--tile", "32"])
        spec = GenerationSpec.from_json(text)
        assert spec == GenerationSpec.from_dict(json.loads(spec.to_json()))
        assert spec.seed == 5
        assert spec.plan["tile_nx"] == 32

    def test_spec_file_reproduces_flag_surface(self, tmp_path, capsys):
        """generate --spec bytes == generate <flags> bytes (tiled)."""
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(self._dump_spec(capsys, ["--tile", "32"]))

        by_flags = tmp_path / "flags.npz"
        assert main(["generate", *BASE_FLAGS, "--tile", "32",
                     "--npz", str(by_flags)]) == 0
        by_spec = tmp_path / "spec.npz"
        assert main(["generate", "--spec", str(spec_file),
                     "--npz", str(by_spec)]) == 0
        capsys.readouterr()
        a = load_surface(by_flags).heights
        b = load_surface(by_spec).heights
        assert a.tobytes() == b.tobytes()

    def test_spec_drives_one_shot_too(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(self._dump_spec(capsys))

        by_flags = tmp_path / "flags.npz"
        assert main(["generate", *BASE_FLAGS, "--npz", str(by_flags)]) == 0
        by_spec = tmp_path / "spec.npz"
        assert main(["generate", "--spec", str(spec_file),
                     "--npz", str(by_spec)]) == 0
        capsys.readouterr()
        assert (load_surface(by_flags).heights.tobytes()
                == load_surface(by_spec).heights.tobytes())

    def test_job_run_spec_matches_generate_spec(self, tmp_path, capsys):
        """job run --spec == generate --spec, same bytes."""
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(self._dump_spec(capsys, ["--tile", "32"]))

        ref = tmp_path / "ref.npz"
        assert main(["generate", "--spec", str(spec_file),
                     "--npz", str(ref)]) == 0
        out = tmp_path / "job.npz"
        assert main(["job", "run", "--spec", str(spec_file),
                     "--checkpoint", str(tmp_path / "ckpt"),
                     "--npz", str(out)]) == 0
        capsys.readouterr()
        assert (load_surface(ref).heights.tobytes()
                == load_surface(out).heights.tobytes())

    def test_spec_and_flags_are_mutually_exclusive(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(self._dump_spec(capsys))
        with pytest.raises(SystemExit):
            main(["generate", "--spec", str(spec_file), "--dump-spec"])

    def test_bad_spec_file_names_field(self, tmp_path, capsys):
        doc = conv_spec().to_dict()
        doc["generator"]["grid"]["nx"] = 0
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as exc:
            main(["generate", "--spec", str(spec_file)])
        assert "generator.grid.nx" in str(exc.value)
