"""Tests for family fitting and classification."""

import numpy as np
import pytest

from repro.core.convolution import convolve_full
from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.stats.fitting import (
    classify_family,
    estimate_power_law_order,
    fit_family,
)


@pytest.fixture(scope="module")
def grid():
    return Grid2D(nx=384, ny=384, lx=1536.0, ly=1536.0)


class TestFitFamily:
    def test_gaussian_parameters_recovered(self, grid):
        spec = GaussianSpectrum(h=1.5, clx=25.0, cly=25.0)
        f = convolve_full(spec, grid, seed=21)
        fit = fit_family(f, grid.dx, "gaussian", cl_guess=20.0)
        assert fit.h == pytest.approx(1.5, rel=0.2)
        assert fit.cl == pytest.approx(25.0, rel=0.2)
        assert fit.order is None

    def test_exponential_parameters_recovered(self, grid):
        spec = ExponentialSpectrum(h=0.8, clx=20.0, cly=20.0)
        f = convolve_full(spec, grid, seed=22)
        fit = fit_family(f, grid.dx, "exponential", cl_guess=15.0)
        assert fit.h == pytest.approx(0.8, rel=0.25)
        assert fit.cl == pytest.approx(20.0, rel=0.4)

    def test_power_law_fixed_order(self, grid):
        spec = PowerLawSpectrum(h=1.0, clx=30.0, cly=30.0, order=3.0)
        f = convolve_full(spec, grid, seed=23)
        fit = fit_family(f, grid.dx, "power_law", cl_guess=25.0,
                         fit_order=False, fixed_order=3.0)
        assert fit.order == 3.0
        assert fit.cl == pytest.approx(30.0, rel=0.3)

    def test_build_round_trip(self, grid):
        f = convolve_full(GaussianSpectrum(h=1.0, clx=25.0, cly=25.0),
                          grid, seed=24)
        fit = fit_family(f, grid.dx, "gaussian", cl_guess=20.0)
        spec = fit.build()
        assert spec.kind == "gaussian"
        assert spec.h == pytest.approx(fit.h)

    def test_validation(self, grid):
        f = np.zeros((16, 16))
        with pytest.raises(ValueError):
            fit_family(f, 1.0, "triangular", cl_guess=5.0)
        with pytest.raises(ValueError):
            fit_family(f, 1.0, "gaussian", cl_guess=-1.0)


class TestClassify:
    @pytest.mark.parametrize("spec, expected", [
        (GaussianSpectrum(h=1.0, clx=30.0, cly=30.0), "gaussian"),
        (ExponentialSpectrum(h=1.0, clx=30.0, cly=30.0), "exponential"),
        (PowerLawSpectrum(h=1.0, clx=30.0, cly=30.0, order=2.0),
         "power_law_2"),
    ])
    def test_correct_family_wins(self, grid, spec, expected):
        f = convolve_full(spec, grid, seed=31)
        best, fits = classify_family(f, grid.dx, cl_guess=25.0)
        key = best.kind if best.order is None else f"power_law_{best.order:g}"
        assert key == expected
        assert len(fits) == 4  # gaussian, exponential, PL2, PL3

    def test_rss_margins_meaningful(self, grid):
        f = convolve_full(GaussianSpectrum(h=1.0, clx=30.0, cly=30.0),
                          grid, seed=32)
        best, fits = classify_family(f, grid.dx, cl_guess=25.0)
        # the wrong family (exponential) fits far worse
        assert fits["exponential"].rss > 5.0 * best.rss


class TestOrderEstimation:
    def test_low_vs_high_order_distinguishable(self, grid):
        f_lo = convolve_full(
            PowerLawSpectrum(h=1.0, clx=30.0, cly=30.0, order=1.6),
            grid, seed=41,
        )
        f_hi = convolve_full(
            PowerLawSpectrum(h=1.0, clx=30.0, cly=30.0, order=6.0),
            grid, seed=42,
        )
        n_lo = estimate_power_law_order(f_lo, grid.dx, 25.0)
        n_hi = estimate_power_law_order(f_hi, grid.dx, 25.0)
        assert n_lo < 2.5
        assert n_hi > 3.5

    def test_order_two_recovered_roughly(self, grid):
        # N is weakly identified at moderate values (the ACF family is
        # flat in N there): accept a generous band
        f = convolve_full(
            PowerLawSpectrum(h=1.0, clx=30.0, cly=30.0, order=2.0),
            grid, seed=43,
        )
        n_hat = estimate_power_law_order(f, grid.dx, 25.0)
        assert 1.3 < n_hat < 3.2
