"""Unit tests for the spectral families (paper eqns 5-10)."""

import numpy as np
import pytest
from scipy import integrate

from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
    Spectrum,
    register_spectrum,
    spectrum_from_dict,
)


class TestValidation:
    def test_negative_h_rejected(self):
        with pytest.raises(ValueError):
            GaussianSpectrum(h=-1.0, clx=1.0, cly=1.0)

    def test_zero_cl_rejected(self):
        with pytest.raises(ValueError):
            GaussianSpectrum(h=1.0, clx=0.0, cly=1.0)

    def test_power_law_order_must_exceed_one(self):
        with pytest.raises(ValueError):
            PowerLawSpectrum(h=1.0, clx=1.0, cly=1.0, order=1.0)
        with pytest.raises(ValueError):
            PowerLawSpectrum(h=1.0, clx=1.0, cly=1.0, order=0.5)

    def test_zero_h_allowed(self):
        s = GaussianSpectrum(h=0.0, clx=1.0, cly=1.0)
        assert s.variance == 0.0
        assert s.autocorrelation(0.0, 0.0) == 0.0


class TestClosedForms:
    def test_gaussian_spectrum_value(self):
        s = GaussianSpectrum(h=2.0, clx=3.0, cly=4.0)
        # eqn 5 at K = 0
        expected = 3.0 * 4.0 * 4.0 / (4 * np.pi)
        assert s.spectrum(0.0, 0.0) == pytest.approx(expected)

    def test_gaussian_acf_value(self):
        s = GaussianSpectrum(h=2.0, clx=3.0, cly=4.0)
        # eqn 6
        assert s.autocorrelation(3.0, 0.0) == pytest.approx(4.0 * np.exp(-1.0))
        assert s.autocorrelation(0.0, 4.0) == pytest.approx(4.0 * np.exp(-1.0))

    def test_exponential_spectrum_value(self):
        s = ExponentialSpectrum(h=2.0, clx=3.0, cly=4.0)
        expected = 3.0 * 4.0 * 4.0 / (2 * np.pi)
        assert s.spectrum(0.0, 0.0) == pytest.approx(expected)
        # eqn 9 shape: decays as [1 + (K clx)^2]^(−3/2) along x
        k = 2.0
        ratio = s.spectrum(k, 0.0) / s.spectrum(0.0, 0.0)
        assert ratio == pytest.approx((1 + (k * 3.0) ** 2) ** -1.5)

    def test_exponential_acf_value(self):
        s = ExponentialSpectrum(h=2.0, clx=3.0, cly=4.0)
        assert s.autocorrelation(3.0, 0.0) == pytest.approx(4.0 * np.exp(-1.0))

    def test_power_law_gamma_ratio(self):
        # Gamma(N)/Gamma(N-1) == N-1
        s = PowerLawSpectrum(h=1.0, clx=2.0, cly=2.0, order=3.5)
        expected = 2.0 * 2.0 / (4 * np.pi) * 2.5
        assert s.spectrum(0.0, 0.0) == pytest.approx(expected)

    def test_power_law_acf_at_zero_is_variance(self):
        for n in (1.5, 2.0, 3.0, 5.0, 10.0):
            s = PowerLawSpectrum(h=2.0, clx=5.0, cly=5.0, order=n)
            assert s.autocorrelation(0.0, 0.0) == pytest.approx(4.0, rel=1e-10)

    def test_power_law_acf_monotone_decreasing(self):
        s = PowerLawSpectrum(h=1.0, clx=5.0, cly=5.0, order=2.0)
        r = np.linspace(0.0, 50.0, 200)
        rho = s.autocorrelation(r, 0.0)
        assert np.all(np.diff(rho) <= 1e-12)
        assert rho[-1] < 0.05  # decays far out

    def test_acf_even_symmetry(self, any_spectrum):
        x = np.array([1.0, 5.0, 10.0])
        assert np.allclose(
            any_spectrum.autocorrelation(x, 2.0),
            any_spectrum.autocorrelation(-x, -2.0),
        )


class TestFourierPair:
    """spectrum and autocorrelation must be exact 2D Fourier pairs."""

    @pytest.mark.parametrize(
        "spec, k_factor, rel",
        [
            # Gaussian decays super-exponentially: small domain suffices.
            (GaussianSpectrum(h=1.0, clx=2.0, cly=3.0), 40.0, 1e-4),
            # Exponential has a K^-3 tail: integrate much further and
            # accept the residual tail mass ~ h^2 / (cl * K_max).
            (ExponentialSpectrum(h=1.5, clx=2.0, cly=2.0), 2000.0, 2e-3),
            (PowerLawSpectrum(h=1.0, clx=2.0, cly=2.0, order=2.0), 2000.0, 2e-3),
            (PowerLawSpectrum(h=1.0, clx=3.0, cly=3.0, order=4.0), 200.0, 1e-3),
        ],
    )
    def test_integral_of_spectrum_is_variance(self, spec, k_factor, rel):
        # eqn 1: integral W dK = h^2 (numerical, over one quadrant x4)
        val, _ = integrate.dblquad(
            lambda ky, kx: spec.spectrum(kx, ky),
            0.0, k_factor / spec.clx,
            0.0, k_factor / spec.cly,
            epsabs=1e-12, epsrel=1e-10,
        )
        assert 4.0 * val == pytest.approx(spec.variance, rel=rel)

    @pytest.mark.parametrize(
        "spec",
        [
            GaussianSpectrum(h=1.0, clx=2.0, cly=2.0),
            ExponentialSpectrum(h=1.0, clx=2.0, cly=2.0),
            PowerLawSpectrum(h=1.0, clx=2.0, cly=2.0, order=2.5),
        ],
    )
    def test_transform_of_spectrum_matches_acf_at_lags(self, spec):
        # rho(r) = iint W e^{jKr} dK, checked at a couple of lags
        for (x, y) in [(1.0, 0.0), (2.0, 1.0)]:
            val, _ = integrate.dblquad(
                lambda ky, kx: spec.spectrum(kx, ky)
                * np.cos(kx * x) * np.cos(ky * y),
                0.0, 30.0, 0.0, 30.0, epsabs=1e-10,
            )
            # even spectrum: e^{jKr} -> 4 * cos(Kx x) cos(Ky y) over quadrant
            assert 4.0 * val == pytest.approx(
                float(spec.autocorrelation(x, y)), abs=2e-3
            )


class TestUtilities:
    def test_correlation_coefficient_normalised(self, any_spectrum):
        assert any_spectrum.correlation_coefficient(0.0, 0.0) == pytest.approx(1.0)

    def test_correlation_coefficient_zero_h(self):
        s = GaussianSpectrum(h=0.0, clx=1.0, cly=1.0)
        assert np.all(s.correlation_coefficient(np.array([0.0, 1.0]), 0.0) == 1.0)

    def test_with_params(self):
        s = GaussianSpectrum(h=1.0, clx=2.0, cly=3.0)
        s2 = s.with_params(h=5.0)
        assert s2.h == 5.0 and s2.clx == 2.0 and s2.cly == 3.0
        assert isinstance(s2, GaussianSpectrum)

    def test_with_params_preserves_power_law_order(self):
        s = PowerLawSpectrum(h=1.0, clx=2.0, cly=2.0, order=3.0)
        s2 = s.with_params(clx=9.0)
        assert isinstance(s2, PowerLawSpectrum)
        assert s2.order == 3.0 and s2.clx == 9.0

    def test_isotropic_constructor(self):
        s = ExponentialSpectrum.isotropic(h=1.0, cl=7.0)
        assert s.clx == 7.0 and s.cly == 7.0

    def test_serialisation_round_trip(self, any_spectrum):
        d = any_spectrum.to_dict()
        s2 = spectrum_from_dict(d)
        assert s2 == any_spectrum

    def test_spectrum_from_dict_unknown_kind(self):
        with pytest.raises(KeyError):
            spectrum_from_dict({"kind": "nope", "h": 1, "clx": 1, "cly": 1})

    def test_register_requires_concrete_kind(self):
        with pytest.raises(ValueError):
            register_spectrum(Spectrum)  # type: ignore[type-abstract]
