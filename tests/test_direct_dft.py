"""Unit tests for the direct DFT method (eqns 19-33)."""

import numpy as np
import pytest

from repro.core.direct_dft import (
    conjugate_mirror,
    direct_dft_surface,
    direct_surface_from_array,
    hermitian_array_from_noise,
    hermitian_random_array,
    is_hermitian,
    spectral_white_noise,
)
from repro.core.grid import Grid2D
from repro.core.rng import standard_normal_field


class TestConjugateMirror:
    def test_mirror_of_mirror_is_identity(self, rng):
        z = rng.standard_normal((6, 8)) + 1j * rng.standard_normal((6, 8))
        assert np.allclose(conjugate_mirror(conjugate_mirror(z)), z)

    def test_mirror_fixes_self_conjugate_bins(self, rng):
        z = rng.standard_normal((4, 4)) + 0j
        m = conjugate_mirror(z)
        # (0,0), (0,2), (2,0), (2,2) map to themselves (conjugated)
        for i, j in [(0, 0), (0, 2), (2, 0), (2, 2)]:
            assert m[i, j] == np.conj(z[i, j])

    def test_mirror_pairs(self, rng):
        z = rng.standard_normal((4, 6)) + 1j * rng.standard_normal((4, 6))
        m = conjugate_mirror(z)
        assert m[1, 2] == np.conj(z[3, 4])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            conjugate_mirror(np.zeros(4, dtype=complex))


class TestHermitianRandomArray:
    def test_is_hermitian(self, grid):
        u = hermitian_random_array(grid, seed=1)
        assert is_hermitian(u)

    def test_unit_second_moment(self):
        g = Grid2D(nx=64, ny=64, lx=64.0, ly=64.0)
        u = hermitian_random_array(g, seed=2)
        assert np.mean(np.abs(u) ** 2) == pytest.approx(1.0, abs=0.08)

    def test_self_conjugate_bins_real(self, grid):
        u = hermitian_random_array(grid, seed=3)
        for i, j in [(0, 0), (0, grid.my), (grid.mx, 0), (grid.mx, grid.my)]:
            assert abs(u[i, j].imag) < 1e-12

    def test_dft_is_real_white(self, grid):
        # eqn 33: DFT(u)/sqrt(NxNy) ~ N(0,1) real
        u = hermitian_random_array(grid, seed=4)
        big_u = np.fft.fft2(u)
        assert np.max(np.abs(big_u.imag)) < 1e-9 * np.max(np.abs(big_u.real))
        white = spectral_white_noise(u)
        assert white.std() == pytest.approx(1.0, abs=0.05)
        assert abs(white.mean()) < 0.05

    def test_seeding(self, grid):
        assert np.allclose(
            hermitian_random_array(grid, seed=9),
            hermitian_random_array(grid, seed=9),
        )


class TestHermitianFromNoise:
    def test_round_trip_to_white_noise(self, grid):
        x = standard_normal_field(grid.shape, seed=5)
        u = hermitian_array_from_noise(x)
        assert is_hermitian(u)
        # spectral_white_noise recovers... the DFT of conj relationship:
        # DFT(u) = conj over index-mirror; magnitudes match X spectrum
        assert np.mean(np.abs(u) ** 2) == pytest.approx(1.0, abs=0.08)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            hermitian_array_from_noise(np.zeros(8))


class TestDirectSurface:
    def test_output_real_and_shaped(self, any_spectrum, grid):
        f = direct_dft_surface(any_spectrum, grid, seed=6)
        assert f.shape == grid.shape
        assert f.dtype == np.float64

    def test_variance_close_to_target(self, any_spectrum):
        g = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        f = direct_dft_surface(any_spectrum, g, seed=7)
        # single realisation: generous band
        assert f.std() == pytest.approx(any_spectrum.h, rel=0.35)

    def test_non_hermitian_input_rejected(self, gaussian, grid, rng):
        u = rng.standard_normal(grid.shape) + 1j * rng.standard_normal(grid.shape)
        with pytest.raises(ValueError, match="Hermitian"):
            direct_surface_from_array(gaussian, grid, u)

    def test_shape_mismatch_rejected(self, gaussian, grid):
        with pytest.raises(ValueError):
            direct_surface_from_array(gaussian, grid, np.zeros((4, 4), complex))

    def test_seed_reproducibility(self, gaussian, grid):
        assert np.allclose(
            direct_dft_surface(gaussian, grid, seed=11),
            direct_dft_surface(gaussian, grid, seed=11),
        )

    def test_zero_h_gives_flat_surface(self, grid):
        from repro.core.spectra import GaussianSpectrum

        s = GaussianSpectrum(h=0.0, clx=10.0, cly=10.0)
        f = direct_dft_surface(s, grid, seed=1)
        assert np.allclose(f, 0.0)
