"""Tests for the point-oriented method (paper eqns 40-46)."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.inhomogeneous import (
    InhomogeneousGenerator,
    PointOrientedLayout,
    PointSpec,
    point_oriented_weights,
)
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum


@pytest.fixture
def sa():
    return GaussianSpectrum(h=1.0, clx=10.0, cly=10.0)


@pytest.fixture
def sb():
    return ExponentialSpectrum(h=2.0, clx=10.0, cly=10.0)


class TestWeights:
    def test_single_point_all_ones(self):
        w = point_oriented_weights(
            np.array([0.0]), np.array([0.0]),
            np.array([1.0, 5.0]), np.array([0.0, 2.0]), half_width=3.0,
        )
        assert np.allclose(w, 1.0)

    def test_columns_sum_to_one(self):
        rng = np.random.default_rng(4)
        px, py = rng.uniform(0, 100, 6), rng.uniform(0, 100, 6)
        qx, qy = rng.uniform(0, 100, 200), rng.uniform(0, 100, 200)
        w = point_oriented_weights(px, py, qx, qy, half_width=20.0)
        assert np.allclose(w.sum(axis=0), 1.0)
        assert np.all(w >= 0.0) and np.all(w <= 1.0)

    def test_nearest_dominates(self):
        # eqn 45 consequence: the nearest point's weight >= 1/2
        rng = np.random.default_rng(5)
        px, py = rng.uniform(0, 100, 5), rng.uniform(0, 100, 5)
        qx, qy = rng.uniform(0, 100, 300), rng.uniform(0, 100, 300)
        w = point_oriented_weights(px, py, qx, qy, half_width=30.0)
        d2 = (px[:, None] - qx) ** 2 + (py[:, None] - qy) ** 2
        nearest = np.argmin(d2, axis=0)
        w_near = w[nearest, np.arange(qx.size)]
        assert np.all(w_near >= 0.5 - 1e-12)

    def test_far_from_bisectors_is_pure(self):
        # two points far apart: a query close to one of them is pure
        w = point_oriented_weights(
            np.array([0.0, 100.0]), np.array([0.0, 0.0]),
            np.array([1.0]), np.array([0.0]), half_width=5.0,
        )
        assert w[0, 0] == pytest.approx(1.0)
        assert w[1, 0] == pytest.approx(0.0)

    def test_on_bisector_equal_blend(self):
        # tau = 0 on the bisector: eqn 44 gives 1/(2*1), remainder 1/2
        w = point_oriented_weights(
            np.array([0.0, 10.0]), np.array([0.0, 0.0]),
            np.array([5.0]), np.array([3.0]), half_width=4.0,
        )
        assert w[0, 0] == pytest.approx(0.5)
        assert w[1, 0] == pytest.approx(0.5)

    def test_linear_fade_in_tau(self):
        # query sliding from the bisector towards point 0: competitor
        # weight decays linearly from 1/2 to 0 at tau = T (eqns 43-44)
        px = np.array([0.0, 10.0])
        py = np.array([0.0, 0.0])
        T = 3.0
        xs = np.array([5.0, 4.0, 3.5, 2.0, 1.0])  # tau = 0,1,1.5,3,4
        w = point_oriented_weights(px, py, xs, np.zeros_like(xs), half_width=T)
        expected = np.array([0.5, (1 - 1 / 3) / 2, 0.25, 0.0, 0.0])
        assert np.allclose(w[1], expected)

    def test_zero_half_width_is_voronoi(self):
        rng = np.random.default_rng(6)
        px, py = rng.uniform(0, 50, 4), rng.uniform(0, 50, 4)
        qx, qy = rng.uniform(0, 50, 100), rng.uniform(0, 50, 100)
        w = point_oriented_weights(px, py, qx, qy, half_width=0.0)
        assert set(np.unique(w)) <= {0.0, 1.0}
        d2 = (px[:, None] - qx) ** 2 + (py[:, None] - qy) ** 2
        nearest = np.argmin(d2, axis=0)
        assert np.all(w[nearest, np.arange(100)] == 1.0)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            point_oriented_weights(
                np.array([1.0, 1.0]), np.array([2.0, 2.0]),
                np.array([0.0]), np.array([0.0]), half_width=1.0,
            )

    def test_negative_half_width_rejected(self):
        with pytest.raises(ValueError):
            point_oriented_weights(
                np.array([0.0]), np.array([0.0]),
                np.array([1.0]), np.array([1.0]), half_width=-1.0,
            )

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            point_oriented_weights(
                np.array([]), np.array([]),
                np.array([1.0]), np.array([1.0]), half_width=1.0,
            )


class TestLayout:
    def test_weight_map_partition(self, sa, sb):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        layout = PointOrientedLayout(
            [PointSpec(30, 30, sa), PointSpec(90, 90, sb), PointSpec(30, 90, sa)],
            half_width=20.0,
        )
        wm = layout.weight_map(grid)
        wm.validate()
        # points sharing a spectrum merge into one blend field
        assert wm.n_regions == 2

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            PointOrientedLayout([], half_width=1.0)

    def test_origin_offset_consistency(self, sa, sb):
        grid = Grid2D(nx=32, ny=16, lx=64.0, ly=32.0)
        layout = PointOrientedLayout(
            [PointSpec(10, 10, sa), PointSpec(50, 20, sb)], half_width=12.0
        )
        wm_full = layout.weight_map(grid)
        sub = grid.with_shape(16, 16)
        wm_sub = layout.weight_map(sub, origin=(32.0, 0.0))
        assert np.allclose(wm_sub.weights, wm_full.weights[:, 16:, :])


class TestGeneration:
    def test_fig4_style_generation(self, sa, sb):
        grid = Grid2D(nx=96, ny=96, lx=384.0, ly=384.0)
        pts = [
            PointSpec(192 + 120 * np.cos(2 * np.pi * i / 5),
                      192 + 120 * np.sin(2 * np.pi * i / 5), sa)
            for i in range(5)
        ] + [PointSpec(192.0, 192.0, sb)]
        layout = PointOrientedLayout(pts, half_width=40.0)
        gen = InhomogeneousGenerator(layout, grid, truncation=0.999)
        s = gen.generate(seed=17)
        assert s.shape == grid.shape
        # centre realises sb's larger h; ring region realises sa's
        centre = s.heights[40:56, 40:56]
        assert centre.std() > 1.0  # sb has h = 2

    def test_voronoi_limit_regions_pure(self, sa, sb):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        layout = PointOrientedLayout(
            [PointSpec(64, 128, sa), PointSpec(192, 128, sb)], half_width=0.0
        )
        wm = layout.weight_map(grid)
        assert set(np.unique(wm.weights)) <= {0.0, 1.0}


class TestDegenerateGeometry:
    """Edge cases of eqns (42)-(45): ties, zero distances, zero widths."""

    def test_equidistant_query_splits_evenly(self):
        # query on the bisector: tau = 0, so the competitor gets the full
        # fade 1/(2*1) = 1/2 and the nearest keeps the remainder 1/2
        w = point_oriented_weights(
            np.array([0.0, 2.0]), np.array([0.0, 0.0]),
            np.array([1.0]), np.array([0.0]), half_width=0.5,
        )
        assert np.allclose(w[:, 0], [0.5, 0.5])

    def test_equidistant_three_way_tie(self):
        # centroid of an equilateral triangle: two competitors at tau = 0
        # each take 1/(2*2); the (arbitrarily chosen) nearest keeps 1/2
        ang = 2.0 * np.pi * np.arange(3) / 3.0
        w = point_oriented_weights(
            np.cos(ang), np.sin(ang), np.array([0.0]), np.array([0.0]),
            half_width=0.3,
        )
        assert np.isclose(w.sum(), 1.0)
        assert np.isclose(w.max(), 0.5)
        assert np.allclose(np.sort(w[:, 0]), [0.25, 0.25, 0.5])

    def test_equidistant_query_zero_half_width(self):
        # hard-Voronoi limit with a tie: tau = 0 is not < T, so the
        # nearest (lowest index by argmin) takes everything — weights
        # stay a partition of unity, no NaN from the tie
        w = point_oriented_weights(
            np.array([0.0, 2.0]), np.array([0.0, 0.0]),
            np.array([1.0]), np.array([0.0]), half_width=0.0,
        )
        assert w[:, 0].tolist() == [1.0, 0.0]

    def test_query_coincident_with_representative(self):
        # d2_min = 0 exactly; tau for the rival is half its separation
        w = point_oriented_weights(
            np.array([0.0, 1.0]), np.array([0.0, 0.0]),
            np.array([0.0]), np.array([0.0]), half_width=0.2,
        )
        # rival's tau = 0.5 > T: the coincident point is pure
        assert w[:, 0].tolist() == [1.0, 0.0]
        w2 = point_oriented_weights(
            np.array([0.0, 1.0]), np.array([0.0, 0.0]),
            np.array([0.0]), np.array([0.0]), half_width=1.0,
        )
        # rival participates: fade = 1 - 0.5, share = 0.5 / 2 = 0.25
        assert np.allclose(w2[:, 0], [0.75, 0.25])
        assert w2[0, 0] >= 0.5  # eqn (45): own cell always dominates

    def test_coincident_query_zero_half_width(self):
        w = point_oriented_weights(
            np.array([0.0, 3.0, 0.0]), np.array([0.0, 0.0, 4.0]),
            np.array([0.0, 3.0]), np.array([0.0, 0.0]), half_width=0.0,
        )
        assert np.array_equal(w, [[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
