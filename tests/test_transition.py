"""Unit tests for transition profiles and ramp weights (eqns 38-39, 44)."""

import numpy as np
import pytest

from repro.fields.transition import (
    PROFILES,
    cosine,
    get_profile,
    linear,
    ramp_weight,
    smoothstep,
)


class TestProfiles:
    @pytest.mark.parametrize("phi", [linear, smoothstep, cosine])
    def test_endpoints(self, phi):
        assert phi(np.array(0.0)) == pytest.approx(0.0)
        assert phi(np.array(1.0)) == pytest.approx(1.0)

    @pytest.mark.parametrize("phi", [linear, smoothstep, cosine])
    def test_monotone(self, phi):
        t = np.linspace(0, 1, 101)
        assert np.all(np.diff(phi(t)) >= -1e-12)

    @pytest.mark.parametrize("phi", [linear, smoothstep, cosine])
    def test_clipping_outside_unit_interval(self, phi):
        assert phi(np.array(-0.5)) == pytest.approx(0.0)
        assert phi(np.array(1.5)) == pytest.approx(1.0)

    def test_linear_is_identity_inside(self):
        t = np.linspace(0, 1, 11)
        assert np.allclose(linear(t), t)

    def test_smoothstep_midpoint(self):
        assert smoothstep(np.array(0.5)) == pytest.approx(0.5)

    def test_cosine_midpoint(self):
        assert cosine(np.array(0.5)) == pytest.approx(0.5)

    def test_smoothstep_flat_derivative_at_ends(self):
        eps = 1e-5
        d0 = (smoothstep(np.array(eps)) - 0.0) / eps
        d1 = (1.0 - smoothstep(np.array(1.0 - eps))) / eps
        assert d0 < 1e-3 and d1 < 1e-3

    def test_get_profile_by_name_and_callable(self):
        assert get_profile("linear") is linear
        f = lambda t: t  # noqa: E731
        assert get_profile(f) is f
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_registry_complete(self):
        assert set(PROFILES) == {"linear", "smoothstep", "cosine"}


class TestRampWeight:
    def test_deep_inside_and_outside(self):
        sd = np.array([-10.0, 10.0])
        w = ramp_weight(sd, half_width=2.0)
        assert np.allclose(w, [1.0, 0.0])

    def test_linear_in_band(self):
        # eqns 38-39: linear across [-T, T]
        sd = np.array([-2.0, -1.0, 0.0, 1.0, 2.0])
        w = ramp_weight(sd, half_width=2.0)
        assert np.allclose(w, [1.0, 0.75, 0.5, 0.25, 0.0])

    def test_hard_edge_at_zero_width(self):
        sd = np.array([-1.0, 0.0, 1.0])
        w = ramp_weight(sd, half_width=0.0)
        assert np.allclose(w, [1.0, 1.0, 0.0])

    def test_negative_half_width_rejected(self):
        with pytest.raises(ValueError):
            ramp_weight(np.zeros(3), half_width=-1.0)

    def test_complementary_ramps_partition(self):
        # a region and its complement blend to exactly 1 everywhere
        sd = np.linspace(-5, 5, 41)
        w_in = ramp_weight(sd, 2.0)
        w_out = ramp_weight(-sd, 2.0)
        assert np.allclose(w_in + w_out, 1.0)

    def test_profile_argument(self):
        sd = np.array([0.0])
        assert ramp_weight(sd, 1.0, "cosine") == pytest.approx(0.5)
