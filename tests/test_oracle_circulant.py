"""Differential oracle tier: convolution method vs circulant embedding.

Every other statistical test of the convolution method gates against
targets *derived from the same weighting array the method convolves
with* — a self-check.  This module compares it against
:class:`repro.core.circulant.CirculantGenerator`, an exact sampler that
shares nothing with the convolution path (no weighting array, no
kernel, no valid-mode engine): agreement here means two independent
derivations of the paper's statistics coincide.

The two samplers target slightly different distributions by
construction — the convolution method realises the *discretised*
spectrum (variance ``sum(w)``), circulant embedding the *analytic* ACF
(variance ``h^2``); the gap reaches ~12% for the exponential family
(see ``tolerances.variance_rtol``).  Each ensemble is therefore
normalised by its own target std before comparison, which cancels the
known gap and leaves the gates bounding implementation error plus
fixed-seed sampling noise.

All seeds are fixed: every statistic below is a deterministic number
and the suite is deterministic end to end (tier-1 style), see the
calibration notes in :mod:`tests.tolerances`.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.circulant import CirculantGenerator
from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.core.spectra_ext import SelfAffineSpectrum
from repro.core.weights import weight_array
from repro.stats.acf import acf2d_unbiased

from tests.tolerances import (
    oracle_acf_coefficient_atol,
    oracle_ks_max,
    oracle_variance_ratio_rtol,
)

pytestmark = pytest.mark.oracle

N = 96
CL = 10.0
LAG = 10  # CL / dx on the unit-spacing grid
CONV_SEED0 = 100
N_CONV = 64
CIRC_SEED0 = 300
N_PAIRS = 32  # 32 Re/Im pairs -> 64 independent circulant fields
POOL_STRIDE = 7  # decimate pooled samples to tame spatial correlation

SPECTRA = [
    GaussianSpectrum(h=1.0, clx=CL, cly=CL),
    ExponentialSpectrum(h=1.0, clx=CL, cly=CL),
    PowerLawSpectrum(h=1.0, clx=CL, cly=CL, order=2.0),
    # roll-off form: the analytic Hankel-pair ACF makes the exact
    # sampler available as an oracle for the self-affine family too
    SelfAffineSpectrum(sigma=1.0, hurst=0.8, qr=0.4),
]


@pytest.fixture(scope="module", params=SPECTRA, ids=lambda s: s.kind)
def spectrum(request):
    return request.param


@pytest.fixture(scope="module")
def grid():
    return Grid2D(nx=N, ny=N, lx=float(N), ly=float(N))


@pytest.fixture(scope="module")
def conv_fields(spectrum, grid):
    """Convolution ensemble, normalised by its discrete target std."""
    gen = ConvolutionGenerator(spectrum, grid)
    scale = 1.0 / np.sqrt(float(weight_array(spectrum, grid).sum()))
    return [
        np.asarray(gen.generate(seed=CONV_SEED0 + i)) * scale
        for i in range(N_CONV)
    ]


@pytest.fixture(scope="module")
def circ_fields(spectrum, grid):
    """Exact circulant ensemble (unit analytic variance, ``h = 1``)."""
    gen = CirculantGenerator(spectrum, grid)
    fields = []
    for i in range(N_PAIRS):
        re, im = gen.generate_pair(seed=CIRC_SEED0 + i)
        fields.append(np.asarray(re))
        fields.append(np.asarray(im))
    return fields


def _pool(fields):
    return np.concatenate([f.ravel()[::POOL_STRIDE] for f in fields])


def _acf_coefficient(fields):
    """Ensemble correlation coefficient at lag ``(LAG, 0)``."""
    acf = np.zeros((LAG + 1, LAG + 1))
    var = 0.0
    for f in fields:
        a = acf2d_unbiased(f, max_lag=(LAG, LAG))
        acf += a
        var += a[0, 0]
    return acf[LAG, 0] / var


def test_embedding_is_nonnegative_definite(spectrum, grid):
    """The 2x even extension needs no eigenvalue repair (beyond
    rounding noise) for any paper spectrum on the fixture grid, so the
    oracle really is exact, not clipped-approximate."""
    gen = CirculantGenerator(spectrum, grid)
    gen.generate(seed=0)
    info = gen.embedding_info
    assert info["eig_clipped_mass"] < 1e-12, info


@pytest.mark.parametrize("hurst", [0.1, 0.2, 0.5, 1.0])
def test_self_affine_embedding_clip_small_h(grid, hurst):
    """Negative-eigenvalue clip behaviour of the self-affine embedding.

    Small ``H`` makes the PSD tail heavy and the ACF tail slowly
    decaying — the classic trigger for indefinite circulant embeddings.
    With the roll-off plateau, though, the ACF *is* the Hankel
    transform of a nonnegative PSD evaluated through the analytic
    plateau + tail decomposition, and the 2x even extension stays
    nonnegative-definite on the fixture grids for every ``H`` down to
    0.1: clipped mass is rounding-level zero, so the oracle remains
    exact (not clipped-approximate) across the whole small-``H`` range.
    This test documents and pins that behaviour; if a future ACF
    evaluation change introduces real clipped mass, the exactness claim
    in the module docstring must be revisited along with this gate.
    """
    spectrum = SelfAffineSpectrum(sigma=1.0, hurst=hurst, qr=0.4)
    gen = CirculantGenerator(spectrum, grid)
    gen.generate(seed=0)
    info = gen.embedding_info
    assert info["eig_clipped_mass"] < 1e-12, (
        f"H={hurst}: embedding clipped mass {info['eig_clipped_mass']:.3e}"
    )


def test_height_marginal_ks(spectrum, conv_fields, circ_fields):
    """Pooled normalised height samples are KS-indistinguishable."""
    ks = stats.ks_2samp(_pool(conv_fields), _pool(circ_fields)).statistic
    assert ks < oracle_ks_max(spectrum), (
        f"{spectrum.kind}: two-sample KS {ks:.4f} exceeds "
        f"{oracle_ks_max(spectrum)}"
    )


def test_rms_height(spectrum, conv_fields, circ_fields):
    """Normalised ensemble variances agree: each sampler hits its own
    target scale, so their ratio pins any variance-scale bug."""
    v_conv = np.mean([(f ** 2).mean() for f in conv_fields])
    v_circ = np.mean([(f ** 2).mean() for f in circ_fields])
    rel = abs(v_conv / v_circ - 1.0)
    assert rel < oracle_variance_ratio_rtol(spectrum), (
        f"{spectrum.kind}: normalised variances {v_conv:.4f} (conv) vs "
        f"{v_circ:.4f} (circulant), ratio-1 = {rel:.4f}"
    )


def test_acf_at_lag_cl(spectrum, conv_fields, circ_fields):
    """Correlation coefficients at lag ``(clx, 0)`` agree — the two
    samplers realise the same correlation *shape*, not just scale."""
    r_conv = _acf_coefficient(conv_fields)
    r_circ = _acf_coefficient(circ_fields)
    diff = abs(r_conv - r_circ)
    assert diff < oracle_acf_coefficient_atol(spectrum), (
        f"{spectrum.kind}: rho({CL}, 0) = {r_conv:.4f} (conv) vs "
        f"{r_circ:.4f} (circulant), diff {diff:.4f}"
    )
