"""Tests for the Kirchhoff scattering substrate."""

import numpy as np
import pytest

from repro.core.oned import Gaussian1D, ProfileGenerator
from repro.scattering.kirchhoff import (
    coherent_reflection_coefficient,
    ka_angular_kernel,
    ka_incoherent_nrcs_gaussian,
    rayleigh_parameter,
)
from repro.scattering.monte_carlo import (
    coherent_attenuation_curve,
    run_ensemble,
    scattering_amplitude,
    tukey_taper,
)

K = 2.0 * np.pi  # wavelength = 1 in profile units
THETA_I = np.deg2rad(20.0)


class TestAnalytic:
    def test_rayleigh_parameter_values(self):
        g = rayleigh_parameter(K, 0.1, 0.0, np.array(0.0))
        assert float(g) == pytest.approx((2.0 * K * 0.1) ** 2)

    def test_rayleigh_parameter_grazing_smaller(self):
        g_normal = rayleigh_parameter(K, 0.1, 0.0, np.array(0.0))
        g_grazing = rayleigh_parameter(
            K, 0.1, np.deg2rad(80.0), np.array(np.deg2rad(80.0))
        )
        assert g_grazing < 0.2 * g_normal

    def test_coherent_coefficient_limits(self):
        assert coherent_reflection_coefficient(K, 0.0, THETA_I) == 1.0
        assert coherent_reflection_coefficient(K, 10.0, THETA_I) < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            rayleigh_parameter(-1.0, 0.1, 0.0, np.array(0.0))
        with pytest.raises(ValueError):
            rayleigh_parameter(K, -0.1, 0.0, np.array(0.0))
        with pytest.raises(ValueError):
            ka_incoherent_nrcs_gaussian(K, 0.1, 0.0, THETA_I, np.array(0.0))
        with pytest.raises(ValueError):
            ka_angular_kernel(np.deg2rad(90.0), np.array(np.deg2rad(-90.0)))

    def test_incoherent_nrcs_peaks_near_specular_when_smooth(self):
        thetas = np.deg2rad(np.linspace(-70, 70, 281))
        sigma = ka_incoherent_nrcs_gaussian(K, 0.05, 2.0, THETA_I, thetas)
        peak = np.rad2deg(thetas[np.argmax(sigma)])
        assert abs(peak - 20.0) < 6.0

    def test_incoherent_nrcs_broadens_with_roughness(self):
        thetas = np.deg2rad(np.linspace(-70, 70, 281))
        def width(h):
            sig = ka_incoherent_nrcs_gaussian(K, h, 2.0, THETA_I, thetas)
            sig = sig / sig.max()
            return np.count_nonzero(sig > 0.5)
        assert width(0.4) > width(0.05)

    def test_series_converges(self):
        thetas = np.deg2rad(np.linspace(-60, 60, 61))
        s40 = ka_incoherent_nrcs_gaussian(K, 0.3, 2.0, THETA_I, thetas, 40)
        s80 = ka_incoherent_nrcs_gaussian(K, 0.3, 2.0, THETA_I, thetas, 80)
        assert np.allclose(s40, s80, rtol=1e-10)


class TestTaper:
    def test_tukey_limits(self):
        assert np.allclose(tukey_taper(64, 0.0), 1.0)
        hann = tukey_taper(65, 1.0)
        assert hann[0] == pytest.approx(0.0, abs=1e-12)
        assert hann[32] == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            tukey_taper(1)
        with pytest.raises(ValueError):
            tukey_taper(16, 1.5)


class TestAmplitude:
    @pytest.fixture
    def geometry(self):
        n, length = 2048, 200.0
        return np.linspace(0.0, length, n, endpoint=False), length / n

    def test_flat_specular_peak(self, geometry):
        x, dx = geometry
        thetas = np.deg2rad(np.linspace(-80.0, 80.0, 321))
        a = scattering_amplitude(x, np.zeros_like(x), K, THETA_I, thetas)
        peak = np.rad2deg(thetas[np.argmax(np.abs(a))])
        assert peak == pytest.approx(20.0, abs=1.0)

    def test_flat_peak_narrow(self, geometry):
        x, dx = geometry
        thetas = np.deg2rad(np.linspace(-80.0, 80.0, 641))
        a = np.abs(scattering_amplitude(x, np.zeros_like(x), K, THETA_I,
                                        thetas))
        half = np.count_nonzero(a > 0.5 * a.max())
        assert half < 12  # ~L/lambda = 200: sub-degree lobe

    def test_phase_only_depends_on_heights(self, geometry):
        x, dx = geometry
        rng = np.random.default_rng(0)
        f = 0.2 * rng.standard_normal(x.size)
        thetas = np.array([THETA_I])
        a1 = scattering_amplitude(x, f, K, THETA_I, thetas)
        a2 = scattering_amplitude(x, f + 0.0, K, THETA_I, thetas)
        assert a1 == pytest.approx(a2)

    def test_validation(self, geometry):
        x, dx = geometry
        with pytest.raises(ValueError):
            scattering_amplitude(x, np.zeros(3), K, THETA_I, np.array([0.0]))
        with pytest.raises(ValueError):
            scattering_amplitude(x, np.zeros_like(x), K, THETA_I,
                                 np.array([0.0]), taper=np.ones(5))


class TestEnsemble:
    def _profiles(self, h, n_prof, n=1024, length=100.0):
        gen = ProfileGenerator(Gaussian1D(h=h, cl=2.0), n, length)
        return [gen.generate(seed=s) for s in range(n_prof)], length / n

    def test_decomposition_identity(self):
        profiles, dx = self._profiles(0.1, 8)
        thetas = np.deg2rad(np.linspace(-40, 60, 51))
        ens = run_ensemble(profiles, dx=dx, k=K, theta_i=THETA_I,
                           theta_s=thetas)
        assert np.all(ens.incoherent_intensity >= 0.0)
        assert np.allclose(
            ens.coherent_intensity + ens.incoherent_intensity,
            ens.mean_intensity, atol=1e-12,
        )

    def test_rough_surface_mostly_incoherent(self):
        # g >> 1: the true coherent intensity is ~exp(-g) ~ 0; the
        # estimator |mean A|^2 carries a residual ~ incoherent/m, so use
        # enough realisations and a ratio the residual cannot reach.
        profiles, dx = self._profiles(0.5, 48)
        thetas = np.array([THETA_I])
        ens = run_ensemble(profiles, dx=dx, k=K, theta_i=THETA_I,
                           theta_s=thetas)
        assert ens.incoherent_intensity[0] > 4.0 * ens.coherent_intensity[0]

    def test_smooth_surface_mostly_coherent(self):
        profiles, dx = self._profiles(0.02, 12)  # g << 1
        thetas = np.array([THETA_I])
        ens = run_ensemble(profiles, dx=dx, k=K, theta_i=THETA_I,
                           theta_s=thetas)
        assert ens.coherent_intensity[0] > 5.0 * ens.incoherent_intensity[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_ensemble([], dx=0.1, k=K, theta_i=THETA_I,
                         theta_s=np.array([0.0]))
        with pytest.raises(ValueError):
            run_ensemble([np.zeros(8), np.zeros(9)], dx=0.1, k=K,
                         theta_i=THETA_I, theta_s=np.array([0.0]))


class TestCoherentCurve:
    def test_matches_analytic_exp_g_half(self):
        n, length = 2048, 200.0
        dx = length / n

        def gen(h, seed):
            if h == 0.0:
                return np.zeros(n)
            g = ProfileGenerator(Gaussian1D(h=h, cl=2.0), n, length)
            return g.generate(seed=seed)

        hs, measured, analytic = coherent_attenuation_curve(
            gen, [0.05, 0.10, 0.15], dx=dx, k=K, theta_i=THETA_I,
            n_realisations=12
        )
        assert np.all(np.abs(measured - analytic) < 0.08)
        # monotone decay
        assert measured[0] > measured[1] > measured[2]


class TestUnifiedApi:
    """The PR 9 port onto the SurfaceGenerator/HeightField protocol."""

    def _fields(self, n_prof, n=512, length=50.0):
        gen = ProfileGenerator(Gaussian1D(h=0.1, cl=2.0), n, length)
        return [gen.generate(seed=s) for s in range(n_prof)], length / n

    def test_dx_inferred_from_heightfield_provenance(self):
        fields, dx = self._fields(4)
        assert fields[0].provenance["dx"] == pytest.approx(dx)
        thetas = np.array([THETA_I])
        inferred = run_ensemble(fields, k=K, theta_i=THETA_I, theta_s=thetas)
        explicit = run_ensemble(fields, dx=dx, k=K, theta_i=THETA_I,
                                theta_s=thetas)
        assert inferred.mean_amplitude == pytest.approx(
            explicit.mean_amplitude)

    def test_ensemble_preserves_provenance(self):
        fields, dx = self._fields(3)
        ens = run_ensemble(fields, k=K, theta_i=THETA_I,
                           theta_s=np.array([THETA_I]))
        assert ens.provenance["method"] == "convolution-1d"
        assert ens.provenance["experiment"]["n_realisations"] == 3
        assert ens.provenance["experiment"]["k"] == pytest.approx(K)

    def test_bare_arrays_require_dx(self):
        with pytest.raises(TypeError, match="dx"):
            run_ensemble([np.zeros(64)], k=K, theta_i=THETA_I,
                         theta_s=np.array([0.0]))

    def test_legacy_positional_shape_warns_and_matches(self):
        fields, dx = self._fields(3)
        thetas = np.array([THETA_I])
        with pytest.warns(DeprecationWarning, match="dx, k, theta_i"):
            legacy = run_ensemble(fields, dx, K, THETA_I, thetas)
        modern = run_ensemble(fields, dx=dx, k=K, theta_i=THETA_I,
                              theta_s=thetas)
        assert legacy.mean_amplitude == pytest.approx(modern.mean_amplitude)

    def test_curve_legacy_positional_shape_warns(self):
        n, length = 256, 25.0
        gen = ProfileGenerator(Gaussian1D(h=0.05, cl=2.0), n, length)

        def make(h, seed):
            return np.zeros(n) if h == 0.0 else gen.generate(seed=seed)

        with pytest.warns(DeprecationWarning, match="positionally"):
            coherent_attenuation_curve(make, [0.05], length / n, K, THETA_I,
                                       4)

    def test_curve_accepts_heightfield_generator(self):
        n, length = 256, 25.0

        def make(h, seed):
            if h == 0.0:
                return ProfileGenerator(
                    Gaussian1D(h=0.05, cl=2.0), n, length
                ).generate(seed=0) * 0.0
            return ProfileGenerator(
                Gaussian1D(h=h, cl=2.0), n, length
            ).generate(seed=seed)

        # dx comes from the HeightField provenance, no keyword needed
        hs, measured, analytic = coherent_attenuation_curve(
            make, [0.05], k=K, theta_i=THETA_I, n_realisations=4
        )
        assert measured.shape == analytic.shape == (1,)
