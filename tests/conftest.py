"""Shared fixtures for the test suite.

Grids are deliberately small (32-128 per axis) so the whole suite runs in
seconds; statistical assertions use fixed seeds and tolerance bands wide
enough that pass/fail is deterministic in practice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)


@pytest.fixture
def small_grid() -> Grid2D:
    """Tiny grid for exact-identity tests."""
    return Grid2D(nx=16, ny=16, lx=64.0, ly=64.0)


@pytest.fixture
def grid() -> Grid2D:
    """Work-horse grid: comfortably resolves cl ~ 10-20 units."""
    return Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)


@pytest.fixture
def rect_grid() -> Grid2D:
    """Non-square grid to catch x/y transpositions."""
    return Grid2D(nx=48, ny=64, lx=96.0, ly=256.0)


@pytest.fixture
def gaussian() -> GaussianSpectrum:
    return GaussianSpectrum(h=1.0, clx=20.0, cly=20.0)


@pytest.fixture
def gaussian_aniso() -> GaussianSpectrum:
    return GaussianSpectrum(h=1.5, clx=10.0, cly=30.0)


@pytest.fixture
def power_law() -> PowerLawSpectrum:
    return PowerLawSpectrum(h=2.0, clx=25.0, cly=25.0, order=2.0)


@pytest.fixture
def exponential() -> ExponentialSpectrum:
    return ExponentialSpectrum(h=0.5, clx=15.0, cly=15.0)


@pytest.fixture(params=["gaussian", "power_law", "exponential"])
def any_spectrum(request):
    """Parametrised over the paper's three spectral families."""
    return {
        "gaussian": GaussianSpectrum(h=1.0, clx=20.0, cly=20.0),
        "power_law": PowerLawSpectrum(h=2.0, clx=25.0, cly=25.0, order=2.0),
        "exponential": ExponentialSpectrum(h=0.5, clx=15.0, cly=15.0),
    }[request.param]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

