"""Meta-tests: the public API surface stays consistent and documented.

Catches the maintenance failures that unit tests never see: an __all__
entry that no longer exists, a public callable without a docstring, a
subpackage missing from the top-level re-exports.
"""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.core.grid",
    "repro.core.spectra",
    "repro.core.spectra_ext",
    "repro.core.weights",
    "repro.core.rng",
    "repro.core.direct_dft",
    "repro.core.convolution",
    "repro.core.inhomogeneous",
    "repro.core.oned",
    "repro.core.ensemble",
    "repro.core.transform",
    "repro.core.surface",
    "repro.fields",
    "repro.fields.regions",
    "repro.fields.transition",
    "repro.fields.parameter_map",
    "repro.fields.continuous",
    "repro.stats",
    "repro.stats.estimators",
    "repro.stats.acf",
    "repro.stats.spectral",
    "repro.stats.correlation_length",
    "repro.stats.local",
    "repro.stats.fitting",
    "repro.stats.extremes",
    "repro.stats.anisotropy",
    "repro.stats.slopes",
    "repro.parallel",
    "repro.parallel.tiles",
    "repro.parallel.executor",
    "repro.parallel.streaming",
    "repro.propagation",
    "repro.propagation.profile",
    "repro.propagation.fresnel",
    "repro.propagation.deygout",
    "repro.propagation.tworay",
    "repro.propagation.hata",
    "repro.propagation.link",
    "repro.propagation.raytrace",
    "repro.propagation.parabolic",
    "repro.propagation.coverage",
    "repro.scattering",
    "repro.scattering.kirchhoff",
    "repro.scattering.monte_carlo",
    "repro.io",
    "repro.io.npzio",
    "repro.io.asciigrid",
    "repro.io.pgm",
    "repro.io.objmesh",
    "repro.io.streamed",
    "repro.validation",
    "repro.validation.checks",
    "repro.validation.ensemble",
    "repro.validation.convergence",
    "repro.figures",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_with_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", MODULES)
def test_all_entries_exist(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    if exported is None:
        pytest.skip("module defines no __all__")
    missing = [entry for entry in exported if not hasattr(mod, entry)]
    assert not missing, f"{name}: __all__ names missing: {missing}"


@pytest.mark.parametrize("name", [m for m in MODULES if m != "repro.cli"])
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    undocumented = []
    for entry in exported:
        obj = getattr(mod, entry)
        if callable(obj) and not inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(entry)
        elif inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(entry)
    assert not undocumented, f"{name}: undocumented exports: {undocumented}"


def test_top_level_reexports_resolve():
    import repro

    for entry in repro.__all__:
        assert hasattr(repro, entry), entry


def test_version_consistency():
    import repro
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
