"""Meta-tests: the public API surface stays consistent and documented.

Catches the maintenance failures that unit tests never see: an __all__
entry that no longer exists, a public callable without a docstring, a
subpackage missing from the top-level re-exports.
"""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.core.api",
    "repro.core.grid",
    "repro.core.spectra",
    "repro.core.spectra_ext",
    "repro.core.weights",
    "repro.core.rng",
    "repro.core.direct_dft",
    "repro.core.convolution",
    "repro.core.inhomogeneous",
    "repro.core.oned",
    "repro.core.ensemble",
    "repro.core.transform",
    "repro.core.surface",
    "repro.fields",
    "repro.fields.regions",
    "repro.fields.transition",
    "repro.fields.parameter_map",
    "repro.fields.continuous",
    "repro.stats",
    "repro.stats.estimators",
    "repro.stats.acf",
    "repro.stats.spectral",
    "repro.stats.correlation_length",
    "repro.stats.local",
    "repro.stats.fitting",
    "repro.stats.extremes",
    "repro.stats.anisotropy",
    "repro.stats.slopes",
    "repro.parallel",
    "repro.parallel.tiles",
    "repro.parallel.executor",
    "repro.parallel.streaming",
    "repro.jobs",
    "repro.jobs.retry",
    "repro.jobs.faults",
    "repro.jobs.checkpoint",
    "repro.jobs.runner",
    "repro.propagation",
    "repro.propagation.profile",
    "repro.propagation.fresnel",
    "repro.propagation.deygout",
    "repro.propagation.tworay",
    "repro.propagation.hata",
    "repro.propagation.link",
    "repro.propagation.raytrace",
    "repro.propagation.parabolic",
    "repro.propagation.coverage",
    "repro.scattering",
    "repro.scattering.kirchhoff",
    "repro.scattering.monte_carlo",
    "repro.io",
    "repro.io.atomic",
    "repro.io.npzio",
    "repro.io.asciigrid",
    "repro.io.pgm",
    "repro.io.objmesh",
    "repro.io.streamed",
    "repro.validation",
    "repro.validation.checks",
    "repro.validation.ensemble",
    "repro.validation.convergence",
    "repro.figures",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_with_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", MODULES)
def test_all_entries_exist(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    if exported is None:
        pytest.skip("module defines no __all__")
    missing = [entry for entry in exported if not hasattr(mod, entry)]
    assert not missing, f"{name}: __all__ names missing: {missing}"


@pytest.mark.parametrize("name", [m for m in MODULES if m != "repro.cli"])
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    undocumented = []
    for entry in exported:
        obj = getattr(mod, entry)
        if callable(obj) and not inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(entry)
        elif inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(entry)
    assert not undocumented, f"{name}: undocumented exports: {undocumented}"


def test_top_level_reexports_resolve():
    import repro

    for entry in repro.__all__:
        assert hasattr(repro, entry), entry


def test_version_consistency():
    import repro
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


# ---------------------------------------------------------------------------
# Unified generator protocol (repro.core.api.SurfaceGenerator)
# ---------------------------------------------------------------------------
def _all_generators():
    """One cheap instance of each of the library's four generators."""
    import numpy as np

    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.inhomogeneous import InhomogeneousGenerator
    from repro.core.oned import Gaussian1D, ProfileGenerator
    from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
    from repro.fields import Circle, LayeredLayout, RegionSpec
    from repro.fields.continuous import ContinuousGenerator

    grid = Grid2D(nx=32, ny=32, lx=32.0, ly=32.0)
    layout = LayeredLayout(
        background=GaussianSpectrum(h=1.0, clx=4.0, cly=4.0),
        patches=[RegionSpec(Circle(cx=16.0, cy=16.0, radius=6.0),
                            ExponentialSpectrum(h=2.0, clx=3.0, cly=3.0),
                            half_width=2.0)],
    )
    return [
        ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=5.0, cly=5.0), grid,
            truncation=(6, 6),
        ),
        InhomogeneousGenerator(layout, grid, truncation=(6, 6)),
        ContinuousGenerator(
            lambda cl: GaussianSpectrum(h=1.0, clx=cl, cly=cl),
            h_field=lambda x, y: 1.0 + 0 * np.asarray(x),
            cl_field=lambda x, y: 4.0 + 0 * np.asarray(x),
            grid=grid, levels=2, truncation=(6, 6),
        ),
        ProfileGenerator(Gaussian1D(h=1.0, cl=5.0), 64, 64.0),
    ]


GENERATORS = {type(g).__name__: g for g in _all_generators()}


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generator_satisfies_protocol(name):
    from repro.core.api import SurfaceGenerator, protocol_violations

    gen = GENERATORS[name]
    assert isinstance(gen, SurfaceGenerator), name
    assert protocol_violations(gen) == [], name


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generate_accepts_unified_keywords(name):
    import numpy as np

    from repro.core.api import split_result

    gen = GENERATORS[name]
    a = gen.generate(seed=5, trace=False, provenance={"run": "a"})
    b = gen.generate(seed=5, trace=True)
    assert np.array_equal(split_result(a)[0], split_result(b)[0]), name
    assert a.provenance.get("run") == "a", name


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generate_window_accepts_unified_keywords(name):
    import numpy as np

    from repro.core.oned import BlockNoise1D
    from repro.core.rng import BlockNoise

    gen = GENERATORS[name]
    if name == "ProfileGenerator":
        noise = BlockNoise1D(seed=3)
        a = gen.generate_window(noise, 0, 16, trace=False,
                                provenance={"run": "a"})
        b = gen.generate_window(noise, 0, 16, trace=True)
    else:
        noise = BlockNoise(seed=3)
        a = gen.generate_window(noise, 0, 0, 16, 16, trace=False,
                                provenance={"run": "a"})
        b = gen.generate_window(noise, 0, 0, 16, 16, trace=True)
    from repro.core.api import split_result

    assert np.array_equal(split_result(a)[0], split_result(b)[0]), name
    assert a.provenance.get("run") == "a", name


def test_legacy_positional_generate_warns_but_matches():
    """Old positional call shapes still work, with a DeprecationWarning."""
    import numpy as np

    from repro.core.api import split_result

    for name, gen in GENERATORS.items():
        new = gen.generate(seed=4)
        with pytest.warns(DeprecationWarning):
            old = gen.generate(4, None)  # noise positionally, legacy shape
        assert np.array_equal(split_result(old)[0],
                              split_result(new)[0]), name


def test_legacy_positional_overflow_rejected():
    gen = GENERATORS["ConvolutionGenerator"]
    with pytest.raises(TypeError):
        gen.generate(4, None, "wrap", False, "surplus")


def test_height_field_behaves_like_ndarray():
    import pickle

    import numpy as np

    gen = GENERATORS["ConvolutionGenerator"]
    field = gen.generate(seed=8)
    # plain-array behaviour legacy callers depend on
    assert isinstance(field, np.ndarray)
    assert float(field.std()) > 0
    assert (field + 1.0).shape == field.shape
    assert np.asarray(field) is not None
    assert type(np.asarray(field)) is np.ndarray
    # unified-consumer extras
    assert field.provenance["method"] == "convolution"
    assert np.shares_memory(field.heights, field)
    clone = pickle.loads(pickle.dumps(field))
    assert np.array_equal(clone, field)
    assert clone.provenance == field.provenance


def test_split_result_normalises_every_shape():
    import numpy as np

    from repro.core.api import HeightField, split_result
    from repro.core.grid import Grid2D
    from repro.core.surface import Surface

    bare = np.ones((4, 4))
    h, p = split_result(bare)
    assert p is None and np.array_equal(h, bare)
    field = HeightField.wrap(bare, {"method": "x"})
    h, p = split_result(field)
    assert p == {"method": "x"} and type(h) is np.ndarray
    surf = Surface(heights=bare, grid=Grid2D(4, 4, 4.0, 4.0),
                   provenance={"method": "y"})
    h, p = split_result(surf)
    assert p == {"method": "y"} and np.array_equal(h, bare)
