"""Shared numeric tolerances for the test suite."""


def variance_rtol(spectrum) -> float:
    """Discretisation tolerance for ``sum(w) ~ h^2`` style checks.

    The Gaussian spectrum is band-limited in practice (super-exponential
    decay), so its discretised variance closes to machine precision on
    the fixture grids.  The Exponential (K^-3 tail) and low-order
    Power-Law (K^-2N tail) spectra park real mass beyond the Nyquist
    band; the residual is a property of the discretisation, not a bug,
    so those families get proportionally wider bands here.
    """
    return {"gaussian": 1e-6, "power_law": 0.06, "exponential": 0.12}[
        spectrum.kind
    ]
