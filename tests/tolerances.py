"""Shared numeric tolerances for the test suite."""


def variance_rtol(spectrum) -> float:
    """Discretisation tolerance for ``sum(w) ~ h^2`` style checks.

    The Gaussian spectrum is band-limited in practice (super-exponential
    decay), so its discretised variance closes to machine precision on
    the fixture grids.  The Exponential (K^-3 tail) and low-order
    Power-Law (K^-2N tail) spectra park real mass beyond the Nyquist
    band; the residual is a property of the discretisation, not a bug,
    so those families get proportionally wider bands here.
    """
    return {"gaussian": 1e-6, "power_law": 0.06, "exponential": 0.12}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Conformance gates (tests/test_conformance.py)
#
# The conformance suite uses FIXED seeds, so each statistic below is a
# deterministic number, not a random variable: the margins guard against
# FFT-library rounding drift, not sampling noise.  Calibrated on the
# 96^2 fixture grid, 8 realisations, seeds 100..107 (measured worst
# case in parentheses).
# ---------------------------------------------------------------------------


def ks_stat_max(spectrum) -> float:
    """Max KS statistic: pooled height samples vs N(0, sqrt(sum(w))).

    The pooled samples are spatially correlated, so the classical
    p-value is meaningless; the gate is on the statistic itself
    (measured: gaussian 0.035, power_law 0.035, exponential 0.051).
    """
    return {"gaussian": 0.10, "power_law": 0.10, "exponential": 0.13}[
        spectrum.kind
    ]


def ensemble_variance_rtol(spectrum) -> float:
    """Ensemble mean sample variance vs discrete target ``sum(w)``
    (measured: gaussian 0.003, power_law 0.009, exponential 0.026)."""
    return {"gaussian": 0.04, "power_law": 0.05, "exponential": 0.08}[
        spectrum.kind
    ]


def acf_lag_cl_atol(spectrum) -> float:
    """Ensemble ACF at lag ``(clx, 0)`` vs the discrete target
    ``weight_autocorrelation``, as a fraction of the variance
    (measured: gaussian 0.006, power_law 0.007, exponential 0.011)."""
    return {"gaussian": 0.05, "power_law": 0.05, "exponential": 0.05}[
        spectrum.kind
    ]
