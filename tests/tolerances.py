"""Shared numeric tolerances for the test suite."""


def variance_rtol(spectrum) -> float:
    """Discretisation tolerance for ``sum(w) ~ h^2`` style checks.

    The Gaussian spectrum is band-limited in practice (super-exponential
    decay), so its discretised variance closes to machine precision on
    the fixture grids.  The Exponential (K^-3 tail) and low-order
    Power-Law (K^-2N tail) spectra park real mass beyond the Nyquist
    band; the residual is a property of the discretisation, not a bug,
    so those families get proportionally wider bands here.  The
    self-affine family (K^(-2-2H) tail) behaves like a power law of
    order 1+H: on the fixture grid (qr = 0.4, H = 0.8) the Nyquist-tail
    gap is ~1.7% (analytically ``(pi/qr)^(-2H) / (1+H)``).
    """
    return {"gaussian": 1e-6, "power_law": 0.06, "exponential": 0.12,
            "self_affine": 0.04}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Conformance gates (tests/test_conformance.py)
#
# The conformance suite uses FIXED seeds, so each statistic below is a
# deterministic number, not a random variable: the margins guard against
# FFT-library rounding drift, not sampling noise.  Calibrated on the
# 96^2 fixture grid, 8 realisations, seeds 100..107 (measured worst
# case in parentheses).
# ---------------------------------------------------------------------------


def ks_stat_max(spectrum) -> float:
    """Max KS statistic: pooled height samples vs N(0, sqrt(sum(w))).

    The pooled samples are spatially correlated, so the classical
    p-value is meaningless; the gate is on the statistic itself
    (measured: gaussian 0.035, power_law 0.035, exponential 0.051,
    self_affine 0.018).
    """
    return {"gaussian": 0.10, "power_law": 0.10, "exponential": 0.13,
            "self_affine": 0.08}[
        spectrum.kind
    ]


def ensemble_variance_rtol(spectrum) -> float:
    """Ensemble mean sample variance vs discrete target ``sum(w)``
    (measured: gaussian 0.003, power_law 0.009, exponential 0.026,
    self_affine 0.024)."""
    return {"gaussian": 0.04, "power_law": 0.05, "exponential": 0.08,
            "self_affine": 0.07}[
        spectrum.kind
    ]


def acf_lag_cl_atol(spectrum) -> float:
    """Ensemble ACF at lag ``(clx, 0)`` vs the discrete target
    ``weight_autocorrelation``, as a fraction of the variance
    (measured: gaussian 0.006, power_law 0.007, exponential 0.011,
    self_affine 0.006)."""
    return {"gaussian": 0.05, "power_law": 0.05, "exponential": 0.05,
            "self_affine": 0.05}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Float32 engine mode (tests/test_conformance.py, dtype parametrization)
#
# The float32 engine path is gated two ways: (a) every conformance
# statistic must stay inside the *same* calibrated gates as float64 —
# the cells verified to do so are listed in FLOAT32_SAFE — and (b) the
# float32 surface must track the float64 surface sample-by-sample
# within FLOAT32_VS_FLOAT64_ATOL.
# ---------------------------------------------------------------------------

#: (spectrum kind, statistic) cells verified single-precision-safe: the
#: float32-parametrized conformance run passes the calibrated gate for
#: the cell.  All nine cells pass on the 96^2 fixture — single-precision
#: rounding (~1e-6 in the heights) is four orders of magnitude below the
#: statistical tolerances.  A cell should be *removed* (never widened)
#: if a future engine change pushes float32 rounding into a gate.
FLOAT32_SAFE = {
    (kind, statistic)
    for kind in ("gaussian", "exponential", "power_law", "self_affine")
    for statistic in ("ks", "variance", "acf")
} | {("self_affine", "psd")}


def float32_vs_float64_atol(spectrum) -> float:
    """Max |float32 - float64| height difference on the tiled fixture
    fields, unit ``h`` (measured: gaussian 1.1e-6, exponential 1.2e-6,
    power_law 1.4e-6, self_affine 1.1e-6 — single-precision FFT
    rounding)."""
    return {"gaussian": 1e-5, "power_law": 1e-5, "exponential": 1e-5,
            "self_affine": 1e-5}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Circulant-embedding oracle gates (tests/test_oracle_circulant.py)
#
# Independent-sampler comparison: the convolution ensemble (normalised
# by its *discrete* target std ``sqrt(sum(w))``) against the exact
# circulant ensemble (unit analytic variance).  Normalising each by its
# own target removes the known analytic-vs-discrete variance gap (up to
# ~12% for the exponential family, see ``variance_rtol``), so the gates
# below bound *implementation* error plus fixed-seed sampling noise
# only.  Calibrated on the 96^2 grid, cl = 10: 64 convolution fields
# (seeds 100..163) vs 64 circulant fields (32 Re/Im pairs, seeds
# 300..331); measured worst case in parentheses.
# ---------------------------------------------------------------------------


def oracle_ks_max(spectrum) -> float:
    """Two-sample KS statistic between the pooled decimated normalised
    height samples of the two ensembles (measured: gaussian 0.032,
    exponential 0.040, power_law 0.031, self_affine 0.014)."""
    return {"gaussian": 0.06, "power_law": 0.06, "exponential": 0.07,
            "self_affine": 0.06}[
        spectrum.kind
    ]


def oracle_variance_ratio_rtol(spectrum) -> float:
    """|normalised-variance ratio - 1| between the ensembles (measured:
    gaussian 0.043, exponential 0.037, power_law 0.035,
    self_affine 0.009)."""
    return {"gaussian": 0.08, "power_law": 0.08, "exponential": 0.08,
            "self_affine": 0.08}[
        spectrum.kind
    ]


def oracle_acf_coefficient_atol(spectrum) -> float:
    """|correlation coefficient difference| at lag ``(clx, 0)`` between
    the ensembles (measured: gaussian 0.015, exponential 0.015,
    power_law 0.016, self_affine 0.005)."""
    return {"gaussian": 0.04, "power_law": 0.04, "exponential": 0.04,
            "self_affine": 0.04}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Self-affine radial-PSD gates (tests/test_conformance.py)
#
# Ensemble periodogram over the 8 fixture fields, radially averaged
# with the *target* spectrum binned over the same annuli (so the
# power-law-within-a-bin averaging bias cancels exactly).  Calibrated
# on the 96^2 fixture grid (sigma=1, H=0.8, qr=0.4); measured in
# parentheses.
# ---------------------------------------------------------------------------

#: |fitted H - requested H| from the log-log radial-PSD slope over
#: ``1.5*qr <= K <= 0.55*K_nyq`` (measured: 5e-5 — the ensemble
#: periodogram is unbiased; the margin guards the fixed-seed scatter).
SELF_AFFINE_HURST_ATOL = 0.08

#: Max |log(measured / target)| on the roll-off plateau bins
#: ``1.5*dK <= K <= 0.6*qr`` (measured: 0.078).
SELF_AFFINE_PLATEAU_LOG_MAX = 0.30


# ---------------------------------------------------------------------------
# repro.verify streaming gates (tests/test_verify.py)
#
# The streamed and in-memory verification paths execute identical
# float64 accumulation, so their *metric* agreement gate is essentially
# bitwise; the differential against the independent repro.stats
# implementations allows accumulation-order rounding only.
# ---------------------------------------------------------------------------

#: Streamed metric vs repro.stats on the materialised array (same
#: quantity, different summation order): relative agreement.
VERIFY_VS_STATS_RTOL = 1e-9
