"""Shared numeric tolerances for the test suite."""


def variance_rtol(spectrum) -> float:
    """Discretisation tolerance for ``sum(w) ~ h^2`` style checks.

    The Gaussian spectrum is band-limited in practice (super-exponential
    decay), so its discretised variance closes to machine precision on
    the fixture grids.  The Exponential (K^-3 tail) and low-order
    Power-Law (K^-2N tail) spectra park real mass beyond the Nyquist
    band; the residual is a property of the discretisation, not a bug,
    so those families get proportionally wider bands here.
    """
    return {"gaussian": 1e-6, "power_law": 0.06, "exponential": 0.12}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Conformance gates (tests/test_conformance.py)
#
# The conformance suite uses FIXED seeds, so each statistic below is a
# deterministic number, not a random variable: the margins guard against
# FFT-library rounding drift, not sampling noise.  Calibrated on the
# 96^2 fixture grid, 8 realisations, seeds 100..107 (measured worst
# case in parentheses).
# ---------------------------------------------------------------------------


def ks_stat_max(spectrum) -> float:
    """Max KS statistic: pooled height samples vs N(0, sqrt(sum(w))).

    The pooled samples are spatially correlated, so the classical
    p-value is meaningless; the gate is on the statistic itself
    (measured: gaussian 0.035, power_law 0.035, exponential 0.051).
    """
    return {"gaussian": 0.10, "power_law": 0.10, "exponential": 0.13}[
        spectrum.kind
    ]


def ensemble_variance_rtol(spectrum) -> float:
    """Ensemble mean sample variance vs discrete target ``sum(w)``
    (measured: gaussian 0.003, power_law 0.009, exponential 0.026)."""
    return {"gaussian": 0.04, "power_law": 0.05, "exponential": 0.08}[
        spectrum.kind
    ]


def acf_lag_cl_atol(spectrum) -> float:
    """Ensemble ACF at lag ``(clx, 0)`` vs the discrete target
    ``weight_autocorrelation``, as a fraction of the variance
    (measured: gaussian 0.006, power_law 0.007, exponential 0.011)."""
    return {"gaussian": 0.05, "power_law": 0.05, "exponential": 0.05}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Float32 engine mode (tests/test_conformance.py, dtype parametrization)
#
# The float32 engine path is gated two ways: (a) every conformance
# statistic must stay inside the *same* calibrated gates as float64 —
# the cells verified to do so are listed in FLOAT32_SAFE — and (b) the
# float32 surface must track the float64 surface sample-by-sample
# within FLOAT32_VS_FLOAT64_ATOL.
# ---------------------------------------------------------------------------

#: (spectrum kind, statistic) cells verified single-precision-safe: the
#: float32-parametrized conformance run passes the calibrated gate for
#: the cell.  All nine cells pass on the 96^2 fixture — single-precision
#: rounding (~1e-6 in the heights) is four orders of magnitude below the
#: statistical tolerances.  A cell should be *removed* (never widened)
#: if a future engine change pushes float32 rounding into a gate.
FLOAT32_SAFE = {
    (kind, statistic)
    for kind in ("gaussian", "exponential", "power_law")
    for statistic in ("ks", "variance", "acf")
}


def float32_vs_float64_atol(spectrum) -> float:
    """Max |float32 - float64| height difference on the tiled fixture
    fields, unit ``h`` (measured: gaussian 1.1e-6, exponential 1.2e-6,
    power_law 1.4e-6 — single-precision FFT rounding)."""
    return {"gaussian": 1e-5, "power_law": 1e-5, "exponential": 1e-5}[
        spectrum.kind
    ]


# ---------------------------------------------------------------------------
# Circulant-embedding oracle gates (tests/test_oracle_circulant.py)
#
# Independent-sampler comparison: the convolution ensemble (normalised
# by its *discrete* target std ``sqrt(sum(w))``) against the exact
# circulant ensemble (unit analytic variance).  Normalising each by its
# own target removes the known analytic-vs-discrete variance gap (up to
# ~12% for the exponential family, see ``variance_rtol``), so the gates
# below bound *implementation* error plus fixed-seed sampling noise
# only.  Calibrated on the 96^2 grid, cl = 10: 64 convolution fields
# (seeds 100..163) vs 64 circulant fields (32 Re/Im pairs, seeds
# 300..331); measured worst case in parentheses.
# ---------------------------------------------------------------------------


def oracle_ks_max(spectrum) -> float:
    """Two-sample KS statistic between the pooled decimated normalised
    height samples of the two ensembles (measured: gaussian 0.032,
    exponential 0.040, power_law 0.031)."""
    return {"gaussian": 0.06, "power_law": 0.06, "exponential": 0.07}[
        spectrum.kind
    ]


def oracle_variance_ratio_rtol(spectrum) -> float:
    """|normalised-variance ratio - 1| between the ensembles (measured:
    gaussian 0.043, exponential 0.037, power_law 0.035)."""
    return {"gaussian": 0.08, "power_law": 0.08, "exponential": 0.08}[
        spectrum.kind
    ]


def oracle_acf_coefficient_atol(spectrum) -> float:
    """|correlation coefficient difference| at lag ``(clx, 0)`` between
    the ensembles (measured: gaussian 0.015, exponential 0.015,
    power_law 0.016)."""
    return {"gaussian": 0.04, "power_law": 0.04, "exponential": 0.04}[
        spectrum.kind
    ]
