"""Unit tests for spectral estimators."""

import numpy as np
import pytest

from repro.core.convolution import convolve_full
from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.core.weights import weight_array
from repro.stats.spectral import (
    ensemble_spectrum,
    periodogram,
    radial_spectrum,
    spectrum_axis_profile,
    welch_spectrum,
)


@pytest.fixture
def grid128():
    return Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)


@pytest.fixture
def spec():
    return GaussianSpectrum(h=1.0, clx=20.0, cly=20.0)


class TestPeriodogram:
    def test_parseval(self, grid128, rng):
        f = rng.standard_normal(grid128.shape)
        p = periodogram(f, grid128)
        assert p.sum() * grid128.spectral_cell == pytest.approx(f.var(), rel=1e-9)

    def test_shape_validation(self, grid128):
        with pytest.raises(ValueError):
            periodogram(np.zeros((4, 4)), grid128)

    def test_ensemble_mean_recovers_spectrum(self, grid128, spec):
        reals = [convolve_full(spec, grid128, seed=i) for i in range(24)]
        est = ensemble_spectrum(reals, grid128)
        target = weight_array(spec, grid128) / grid128.spectral_cell
        # compare at energetic bins
        mask = target > target.max() * 0.01
        rel = np.abs(est[mask] - target[mask]) / target[mask]
        assert np.median(rel) < 0.4  # chi2_2 noise / sqrt(24) ~ 0.2

    def test_ensemble_requires_input(self, grid128):
        with pytest.raises(ValueError):
            ensemble_spectrum([], grid128)


class TestWelch:
    def test_parseval_on_average(self, grid128, spec):
        f = convolve_full(spec, grid128, seed=3)
        sub, est = welch_spectrum(f, grid128, segments=(4, 4))
        total = est.sum() * sub.spectral_cell
        assert total == pytest.approx(f.var(), rel=0.5)

    def test_boxcar_window(self, grid128, rng):
        f = rng.standard_normal(grid128.shape)
        sub, est = welch_spectrum(f, grid128, segments=(2, 2), window="boxcar")
        assert est.shape == sub.shape

    def test_variance_reduction_vs_raw(self, grid128, spec):
        # Welch averages 16 patches: scatter at the spectral peak region
        # must be far below the raw periodogram's 100%
        target_fn = lambda g: weight_array(spec, g) / g.spectral_cell  # noqa: E731
        rels = []
        for seed in range(4):
            f = convolve_full(spec, grid128, seed=seed)
            sub, est = welch_spectrum(f, grid128, segments=(4, 4))
            t = target_fn(sub)
            mask = t > t.max() * 0.3
            rels.append(np.mean(np.abs(est[mask] - t[mask]) / t[mask]))
        assert np.mean(rels) < 0.6

    def test_segment_validation(self, grid128):
        with pytest.raises(ValueError):
            welch_spectrum(np.zeros(grid128.shape), grid128, segments=(0, 2))
        with pytest.raises(ValueError):
            welch_spectrum(np.zeros(grid128.shape), grid128, segments=(100, 2))

    def test_window_validation(self, grid128):
        with pytest.raises(ValueError):
            welch_spectrum(np.zeros(grid128.shape), grid128, window="kaiser")


class TestRadialAndProfiles:
    def test_radial_spectrum_shape(self, grid128, spec):
        est = periodogram(convolve_full(spec, grid128, seed=5), grid128)
        k, w = radial_spectrum(est, grid128, n_bins=24)
        assert k.shape == w.shape
        assert np.all(np.diff(k) > 0)

    def test_radial_spectrum_decays(self, grid128, spec):
        reals = [convolve_full(spec, grid128, seed=i) for i in range(8)]
        est = ensemble_spectrum(reals, grid128)
        k, w = radial_spectrum(est, grid128, n_bins=24)
        assert w[0] > 10.0 * w[-1]

    def test_axis_profile(self, grid128, spec):
        est = periodogram(convolve_full(spec, grid128, seed=6), grid128)
        k, p = spectrum_axis_profile(est, grid128, axis="x")
        assert k.shape == p.shape == (grid128.mx + 1,)
        k2, _ = spectrum_axis_profile(est, grid128, axis="y")
        assert k2[1] == pytest.approx(grid128.dky)
        with pytest.raises(ValueError):
            spectrum_axis_profile(est, grid128, axis="z")

    def test_mismatched_estimate_rejected(self, grid128):
        with pytest.raises(ValueError):
            radial_spectrum(np.zeros((4, 4)), grid128)
