"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io.npzio import load_surface


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig9"])


class TestGenerate:
    def test_generate_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "s.npz"
        rc = main([
            "generate", "--spectrum", "gaussian", "--h", "1.0", "--cl", "20",
            "--n", "64", "--domain", "256", "--seed", "3",
            "--npz", str(out),
        ])
        assert rc == 0
        s = load_surface(out)
        assert s.shape == (64, 64)
        assert s.provenance["spectrum"]["kind"] == "gaussian"
        summary = json.loads(
            capsys.readouterr().out.split("wrote")[0]
        )
        assert summary["std"] == pytest.approx(s.height_std())

    def test_generate_power_law(self, capsys):
        rc = main([
            "generate", "--spectrum", "power_law", "--order", "2.5",
            "--h", "1.0", "--cl", "15", "--n", "32", "--domain", "128",
        ])
        assert rc == 0

    def test_generate_requires_cl(self):
        with pytest.raises(SystemExit):
            main(["generate", "--spectrum", "gaussian", "--h", "1.0",
                  "--cl", None] if False else
                 ["generate", "--spectrum", "gaussian", "--h", "1.0",
                  "--n", "16", "--domain", "16"])

    def test_generate_engine_flag(self, tmp_path, capsys):
        surfaces = {}
        for engine in ("auto", "spatial", "fft"):
            out = tmp_path / f"{engine}.npz"
            rc = main([
                "generate", "--spectrum", "gaussian", "--h", "1.0",
                "--cl", "20", "--n", "48", "--domain", "192", "--seed", "9",
                "--engine", engine, "--npz", str(out),
            ])
            assert rc == 0
            capsys.readouterr()
            s = load_surface(out)
            assert s.provenance["engine"] == engine
            surfaces[engine] = s.heights
        assert np.max(
            np.abs(surfaces["spatial"] - surfaces["fft"])
        ) <= 1e-10

    def test_generate_engine_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--cl", "20", "--n", "16", "--domain", "64",
                  "--engine", "warp"])
        assert "--engine" in capsys.readouterr().err

    def test_generate_anisotropic(self, capsys):
        rc = main([
            "generate", "--clx", "10", "--cly", "30",
            "--n", "32", "--domain", "128",
        ])
        assert rc == 0

    def test_renders(self, tmp_path, capsys):
        pgm = tmp_path / "a.pgm"
        ppm = tmp_path / "a.ppm"
        rc = main([
            "generate", "--cl", "20", "--n", "32", "--domain", "128",
            "--pgm", str(pgm), "--ppm", str(ppm), "--preview",
        ])
        assert rc == 0
        assert pgm.read_bytes().startswith(b"P5\n")
        assert ppm.read_bytes().startswith(b"P6\n")


class TestFigureCommand:
    def test_figure_runs(self, tmp_path, capsys):
        out = tmp_path / "f.npz"
        rc = main(["figure", "fig3", "--n", "64", "--npz", str(out)])
        assert rc == 0
        s = load_surface(out)
        assert s.provenance["figure"] == "fig3"


class TestSharedExecutionFlags:
    def test_figure_accepts_engine(self, tmp_path, capsys):
        out = tmp_path / "f.npz"
        rc = main(["figure", "fig1", "--n", "48", "--engine", "fft",
                   "--npz", str(out)])
        assert rc == 0
        assert load_surface(out).provenance["figure"] == "fig1"

    def test_inject_fault_requires_tile(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--cl", "20", "--n", "32", "--domain", "128",
                  "--inject-fault", "tile=0"])

    def test_inject_fault_rejects_bad_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--cl", "20", "--n", "32", "--domain", "128",
                  "--tile", "16", "--inject-fault", "shape=oval"])

    def test_generate_tiled_with_injected_fault_recovers(self, tmp_path,
                                                         capsys):
        plain = tmp_path / "plain.npz"
        faulted = tmp_path / "faulted.npz"
        base = ["generate", "--cl", "10", "--n", "48", "--domain", "192",
                "--seed", "5", "--tile", "24"]
        assert main(base + ["--npz", str(plain)]) == 0
        assert main(base + ["--npz", str(faulted),
                            "--inject-fault", "tile=1,attempt=1"]) == 0
        a = load_surface(plain)
        b = load_surface(faulted)
        assert np.array_equal(a.heights, b.heights)
        assert b.provenance["resilience"]["retries"] == 1


@pytest.mark.faults
class TestJobCommand:
    BASE = ["--cl", "10", "--n", "48", "--domain", "192", "--seed", "5",
            "--tile", "24"]

    def test_run_status_complete(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        rc = main(["job", "run", "--checkpoint", str(ck)] + self.BASE)
        assert rc == 0
        capsys.readouterr()
        assert main(["job", "status", str(ck)]) == 0
        st = json.loads(capsys.readouterr().out)
        assert st["status"] == "complete"
        assert st["tiles_done"] == st["tiles_total"] == 4

    def test_failed_run_resumes_bit_identical(self, tmp_path, capsys):
        ref = tmp_path / "ref.npz"
        resumed = tmp_path / "resumed.npz"
        main(["generate", "--npz", str(ref)] + self.BASE)
        ck = tmp_path / "ck"
        with pytest.raises(SystemExit) as exc:
            main(["job", "run", "--checkpoint", str(ck),
                  "--max-attempts", "2", "--backoff-base", "0.001",
                  "--inject-fault", "tile=2,attempt=1",
                  "--inject-fault", "tile=2,attempt=2"] + self.BASE)
        assert "resume" in str(exc.value)
        capsys.readouterr()
        assert main(["job", "status", str(ck)]) == 0
        st = json.loads(capsys.readouterr().out)
        assert st["status"] == "failed"
        assert 0 < st["tiles_done"] < st["tiles_total"]
        # resume rebuilds the generator from the manifest recipe
        assert main(["job", "resume", str(ck),
                     "--npz", str(resumed)]) == 0
        assert np.array_equal(load_surface(ref).heights,
                              load_surface(resumed).heights)

    def test_worker_kill_exits_with_resume_hint(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        with pytest.raises(SystemExit) as exc:
            main(["job", "run", "--checkpoint", str(ck),
                  "--backend", "process", "--no-degrade",
                  "--max-respawns", "0",
                  "--inject-fault", "tile=2,attempt=1,kind=kill"]
                 + self.BASE)
        assert "resume" in str(exc.value)
        capsys.readouterr()
        assert main(["job", "status", str(ck)]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "failed"

    def test_strips_mode(self, tmp_path, capsys):
        ref = tmp_path / "ref.npz"
        out = tmp_path / "out.npz"
        main(["generate", "--npz", str(ref)] + self.BASE)
        ck = tmp_path / "ck"
        rc = main(["job", "run", "--checkpoint", str(ck),
                   "--mode", "strips", "--npz", str(out)] + self.BASE)
        assert rc == 0
        # strip jobs cover stream_strips' windows, not the square tiles
        # of the tiled mode, so the oracle is the assembled strip stream
        import repro
        from repro.core import BlockNoise
        from repro.parallel import assemble_strips, stream_strips

        gen = repro.ConvolutionGenerator(
            repro.GaussianSpectrum(h=1.0, clx=10.0, cly=10.0),
            repro.Grid2D(nx=48, ny=48, lx=192.0, ly=192.0),
        )
        oracle = assemble_strips(
            stream_strips(gen, BlockNoise(seed=5), 48, 48, 24)
        )
        assert np.array_equal(load_surface(out).heights, oracle.heights)

    def test_run_refuses_existing_checkpoint(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert main(["job", "run", "--checkpoint", str(ck)] + self.BASE) == 0
        with pytest.raises(SystemExit):
            main(["job", "run", "--checkpoint", str(ck)] + self.BASE)

    def test_status_missing_checkpoint(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["job", "status", str(tmp_path / "nope")])

    def test_run_requires_tile(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["job", "run", "--checkpoint", str(tmp_path / "ck"),
                  "--cl", "10", "--n", "48"])

    def test_figure_job(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        rc = main(["job", "run", "--checkpoint", str(ck),
                   "--figure", "fig1", "--n", "48", "--domain", "192",
                   "--tile", "24"])
        assert rc == 0
        capsys.readouterr()
        main(["job", "status", str(ck)])
        st = json.loads(capsys.readouterr().out)
        assert st["status"] == "complete"
        assert st["generator"]["type"] == "InhomogeneousGenerator"


class TestInspect:
    def test_inspect_round_trip(self, tmp_path, capsys):
        out = tmp_path / "s.npz"
        main(["generate", "--cl", "20", "--n", "32", "--domain", "128",
              "--seed", "9", "--npz", str(out)])
        capsys.readouterr()
        rc = main(["inspect", str(out)])
        assert rc == 0
        info = json.loads(capsys.readouterr().out)
        assert info["shape"] == [32, 32]
        assert info["provenance"]["seed"] == 9


class TestValidate:
    def test_validate_gaussian_passes(self, capsys):
        rc = main(["validate", "--spectrum", "gaussian", "--h", "1",
                   "--cl", "20", "--n", "64", "--domain", "256"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["max_abs_error"] < 1e-6

    def test_validate_flags_bad_discretisation(self, capsys):
        # cl comparable to the domain: heavy truncation error
        rc = main(["validate", "--spectrum", "exponential", "--h", "1",
                   "--cl", "200", "--n", "16", "--domain", "64"])
        assert rc == 1


class TestClassifyCommand:
    def test_classify_generated_surface(self, tmp_path, capsys):
        out = tmp_path / "s.npz"
        main(["generate", "--spectrum", "exponential", "--h", "1.0",
              "--cl", "25", "--n", "192", "--domain", "768", "--seed", "2",
              "--npz", str(out)])
        capsys.readouterr()
        rc = main(["classify", str(out), "--cl-guess", "20"])
        assert rc == 0
        result = json.loads(capsys.readouterr().out)
        assert result["best"]["family"] in ("exponential", "power_law")
        assert set(result["all"]) >= {"gaussian", "exponential"}


class TestMeshCommand:
    def test_mesh_export(self, tmp_path, capsys):
        src = tmp_path / "s.npz"
        dst = tmp_path / "s.obj"
        main(["generate", "--cl", "20", "--n", "32", "--domain", "128",
              "--npz", str(src)])
        rc = main(["mesh", str(src), str(dst), "--decimate", "4"])
        assert rc == 0
        text = dst.read_text()
        assert text.count("\nv ") + text.startswith("v ") == 64


class TestProfile1dCommand:
    def test_profile_summary_and_output(self, tmp_path, capsys):
        out = tmp_path / "p.txt"
        rc = main(["profile1d", "--spectrum", "exponential", "--h", "2.0",
                   "--cl", "30", "--n", "2048", "--domain", "2048",
                   "--seed", "4", "--out", str(out)])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out.split("wrote")[0])
        assert summary["std"] == pytest.approx(2.0, rel=0.3)
        import numpy as np
        data = np.loadtxt(out)
        assert data.shape == (2048, 2)

    def test_matern_choice(self, capsys):
        rc = main(["profile1d", "--spectrum", "matern", "--order", "3.0",
                   "--h", "1.0", "--cl", "20", "--n", "1024",
                   "--domain", "1024"])
        assert rc == 0
