"""Tests for slope statistics and streamed export."""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator, convolve_full
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.io.streamed import load_streamed_surface, stream_to_npy
from repro.stats.slopes import (
    measured_forward_slope_variance,
    slope_variance_continuum,
    slope_variance_discrete,
    slope_variance_spectral,
)


class TestSlopeVariance:
    def test_gaussian_closed_form_matches_spectral(self):
        grid = Grid2D(nx=1024, ny=1024, lx=1024.0, ly=1024.0)
        s = GaussianSpectrum(h=1.5, clx=20.0, cly=30.0)
        closed = slope_variance_continuum(s)
        spectral = slope_variance_spectral(s, grid)
        assert spectral[0] == pytest.approx(closed[0], rel=1e-6)
        assert spectral[1] == pytest.approx(closed[1], rel=1e-6)
        assert closed[0] == pytest.approx(2 * 1.5**2 / 20.0**2)

    def test_power_law_closed_form_matches_spectral(self):
        grid = Grid2D(nx=2048, ny=2048, lx=2048.0, ly=2048.0)
        for n in (3.0, 4.0, 6.0):
            s = PowerLawSpectrum(h=1.0, clx=20.0, cly=20.0, order=n)
            closed = slope_variance_continuum(s)[0]
            spectral = slope_variance_spectral(s, grid)[0]
            assert spectral == pytest.approx(closed, rel=0.01), n

    def test_divergent_families_raise(self):
        with pytest.raises(ValueError, match="diverge"):
            slope_variance_continuum(
                ExponentialSpectrum(h=1.0, clx=10.0, cly=10.0)
            )
        with pytest.raises(ValueError, match="N <= 2"):
            slope_variance_continuum(
                PowerLawSpectrum(h=1.0, clx=10.0, cly=10.0, order=2.0)
            )

    def test_exponential_band_limited_grows_with_resolution(self):
        s = ExponentialSpectrum(h=1.0, clx=20.0, cly=20.0)
        coarse = slope_variance_spectral(
            s, Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        )[0]
        fine = slope_variance_spectral(
            s, Grid2D(nx=1024, ny=1024, lx=512.0, ly=512.0)
        )[0]
        assert fine > 2.0 * coarse  # divergence made visible

    def test_discrete_identity_on_generated_surface(self):
        """The forward-difference identity holds exactly in expectation."""
        grid = Grid2D(nx=256, ny=256, lx=512.0, ly=512.0)
        s = ExponentialSpectrum(h=1.0, clx=15.0, cly=15.0)
        pred_x, pred_y = slope_variance_discrete(s, grid)
        acc_x = acc_y = 0.0
        n = 16
        for seed in range(n):
            f = convolve_full(s, grid, seed=300 + seed)
            mx, my = measured_forward_slope_variance(f, grid.dx, grid.dy)
            acc_x += mx
            acc_y += my
        assert acc_x / n == pytest.approx(pred_x, rel=0.05)
        assert acc_y / n == pytest.approx(pred_y, rel=0.05)

    def test_discrete_below_spectral(self):
        # the finite difference under-responds at high K: discrete < spectral
        grid = Grid2D(nx=256, ny=256, lx=512.0, ly=512.0)
        s = GaussianSpectrum(h=1.0, clx=6.0, cly=6.0)
        d = slope_variance_discrete(s, grid)[0]
        c = slope_variance_spectral(s, grid)[0]
        assert d < c

    def test_measured_validation(self):
        with pytest.raises(ValueError):
            measured_forward_slope_variance(np.zeros(8), 1.0, 1.0)


class TestStreamedExport:
    @pytest.fixture
    def gen(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        return ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=12.0, cly=12.0), grid,
            truncation=(8, 8),
        )

    def test_round_trip_matches_window(self, gen, tmp_path):
        bn = BlockNoise(seed=5)
        p = stream_to_npy(tmp_path / "big", gen, bn, total_nx=200, ny=64,
                          strip_nx=64)
        assert p.suffix == ".npy"
        s = load_streamed_surface(p, x_slice=slice(50, 120))
        ref = gen.generate_window(bn, 50, 0, 70, 64)
        assert np.allclose(s.heights, ref, atol=1e-10)
        assert s.origin[0] == pytest.approx(50 * gen.grid.dx)

    def test_strip_width_invariance(self, gen, tmp_path):
        bn = BlockNoise(seed=6)
        p1 = stream_to_npy(tmp_path / "a", gen, bn, total_nx=150, ny=32,
                           strip_nx=150)
        p2 = stream_to_npy(tmp_path / "b", gen, bn, total_nx=150, ny=32,
                           strip_nx=37)
        a = np.load(p1)
        b = np.load(p2)
        assert np.allclose(a, b, atol=1e-10)

    def test_metadata_sidecar(self, gen, tmp_path):
        import json

        bn = BlockNoise(seed=7, block=128)
        p = stream_to_npy(tmp_path / "c", gen, bn, total_nx=64, ny=32,
                          x0=10, y0=-5)
        meta = json.loads((tmp_path / "c.npy.meta.json").read_text())
        assert meta["noise_seed"] == 7
        assert meta["x0"] == 10 and meta["y0"] == -5

    def test_readable_by_plain_numpy(self, gen, tmp_path):
        bn = BlockNoise(seed=8)
        p = stream_to_npy(tmp_path / "d", gen, bn, total_nx=80, ny=16)
        mm = np.load(p, mmap_mode="r")
        assert mm.shape == (80, 16)
        assert np.isfinite(mm[40, 8])

    def test_validation(self, gen, tmp_path):
        with pytest.raises(ValueError):
            stream_to_npy(tmp_path / "x", gen, BlockNoise(seed=1),
                          total_nx=0, ny=8)
        bn = BlockNoise(seed=1)
        p = stream_to_npy(tmp_path / "y", gen, bn, total_nx=16, ny=8)
        with pytest.raises(ValueError):
            load_streamed_surface(p, x_slice=slice(4, 4))
        with pytest.raises(ValueError):
            load_streamed_surface(p, x_slice=slice(0, 8, 2))
