"""Unit tests for the DFT grid (paper eqns 3, 13, 16)."""

import numpy as np
import pytest

from repro.core.grid import Grid2D, fold_index, folded_frequency_index


class TestFolding:
    def test_fold_scalar_below_m(self):
        assert fold_index(3, 8) == 3

    def test_fold_scalar_above_m(self):
        # eqn 16: m >= M maps to 2M - m
        assert fold_index(13, 8) == 3

    def test_fold_at_m_is_nyquist(self):
        assert fold_index(8, 8) == 8

    def test_fold_zero(self):
        assert fold_index(0, 8) == 0

    def test_fold_array(self):
        out = fold_index(np.array([0, 1, 8, 9, 15]), 8)
        assert list(out) == [0, 1, 8, 7, 1]

    def test_fold_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fold_index(16, 8)
        with pytest.raises(ValueError):
            fold_index(-1, 8)

    def test_folded_frequency_index_matches_fftfreq_even(self):
        n = 16
        expected = np.abs(np.fft.fftfreq(n) * n).astype(int)
        assert np.array_equal(folded_frequency_index(n), expected)

    def test_folded_frequency_index_matches_fftfreq_odd(self):
        n = 15
        expected = np.abs(np.fft.fftfreq(n) * n).astype(int)
        assert np.array_equal(folded_frequency_index(n), expected)

    def test_folded_frequency_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            folded_frequency_index(0)


class TestGrid2D:
    def test_basic_derived_quantities(self):
        g = Grid2D(nx=8, ny=16, lx=4.0, ly=32.0)
        assert g.mx == 4 and g.my == 8
        assert g.dx == pytest.approx(0.5)
        assert g.dy == pytest.approx(2.0)
        assert g.dkx == pytest.approx(2 * np.pi / 4.0)
        assert g.dky == pytest.approx(2 * np.pi / 32.0)
        assert g.shape == (8, 16)
        assert g.size == 128
        assert g.cell_area == pytest.approx(1.0)
        assert g.spectral_cell == pytest.approx(4 * np.pi**2 / 128.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(nx=0, ny=4, lx=1.0, ly=1.0)
        with pytest.raises(ValueError):
            Grid2D(nx=4, ny=4, lx=-1.0, ly=1.0)
        with pytest.raises(TypeError):
            Grid2D(nx=4.5, ny=4, lx=1.0, ly=1.0)  # type: ignore[arg-type]

    def test_odd_sizes_allowed(self):
        g = Grid2D(nx=5, ny=7, lx=5.0, ly=7.0)
        assert g.shape == (5, 7)

    def test_coordinates(self):
        g = Grid2D(nx=4, ny=4, lx=8.0, ly=8.0)
        assert np.allclose(g.x, [0, 2, 4, 6])
        X, Y = g.meshgrid()
        assert X.shape == (4, 4)
        assert X[1, 0] == pytest.approx(2.0)
        assert Y[0, 1] == pytest.approx(2.0)

    def test_centered_lags_wrap_order(self):
        g = Grid2D(nx=4, ny=6, lx=4.0, ly=6.0)
        assert np.allclose(g.x_centered, [0, 1, -2, -1])
        assert np.allclose(g.y_centered, [0, 1, 2, -3, -2, -1])

    def test_centered_lags_odd(self):
        g = Grid2D(nx=5, ny=5, lx=5.0, ly=5.0)
        assert np.allclose(g.x_centered, [0, 1, 2, -2, -1])

    def test_folded_frequencies_scale(self):
        g = Grid2D(nx=8, ny=8, lx=16.0, ly=16.0)
        assert g.kx_folded[1] == pytest.approx(2 * np.pi / 16.0)
        assert g.kx_folded[7] == pytest.approx(2 * np.pi / 16.0)
        assert g.kx_folded[4] == pytest.approx(g.nyquist_kx)

    def test_signed_frequencies_match_fftfreq(self):
        g = Grid2D(nx=8, ny=8, lx=16.0, ly=16.0)
        assert np.allclose(g.kx_signed, 2 * np.pi * np.fft.fftfreq(8, d=2.0))

    def test_with_shape_preserves_spacing(self):
        g = Grid2D(nx=8, ny=8, lx=16.0, ly=16.0)
        g2 = g.with_shape(20, 6)
        assert g2.dx == pytest.approx(g.dx)
        assert g2.dy == pytest.approx(g.dy)
        assert g2.shape == (20, 6)

    def test_subgrid(self):
        g = Grid2D(nx=8, ny=8, lx=16.0, ly=16.0)
        sub = g.subgrid(slice(2, 6), slice(0, 8))
        assert sub.shape == (4, 8)
        assert sub.dx == pytest.approx(g.dx)
        with pytest.raises(ValueError):
            g.subgrid(slice(4, 4), slice(0, 8))

    def test_iter_tiles_covers_grid(self):
        g = Grid2D(nx=10, ny=8, lx=10.0, ly=8.0)
        seen = np.zeros(g.shape, dtype=int)
        for sx, sy in g.iter_tiles(4, 3):
            seen[sx, sy] += 1
        assert np.all(seen == 1)

    def test_iter_tiles_rejects_bad_size(self):
        g = Grid2D(nx=4, ny=4, lx=4.0, ly=4.0)
        with pytest.raises(ValueError):
            list(g.iter_tiles(0, 2))

    def test_immutable(self):
        g = Grid2D(nx=4, ny=4, lx=4.0, ly=4.0)
        with pytest.raises(Exception):
            g.nx = 8  # type: ignore[misc]
