"""Unit tests for scalar estimators."""

import numpy as np
import pytest

from repro.stats.estimators import (
    ensemble_std_tolerance,
    height_moments,
    normality_diagnostics,
    rms_height,
    rms_slope,
)


class TestHeightMoments:
    def test_gaussian_sample(self, rng):
        x = rng.standard_normal(200_000) * 2.0 + 1.0
        m = height_moments(x)
        assert m.mean == pytest.approx(1.0, abs=0.05)
        assert m.std == pytest.approx(2.0, abs=0.05)
        assert m.skewness == pytest.approx(0.0, abs=0.05)
        assert m.kurtosis_excess == pytest.approx(0.0, abs=0.1)
        assert m.n == 200_000

    def test_skewed_sample(self, rng):
        x = rng.exponential(1.0, 100_000)
        m = height_moments(x)
        assert m.skewness == pytest.approx(2.0, abs=0.2)

    def test_constant_sample(self):
        m = height_moments(np.full(10, 3.0))
        assert m.std == 0.0 and m.skewness == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            height_moments(np.array([]))

    def test_ddof(self):
        x = np.array([1.0, 2.0, 3.0])
        m0 = height_moments(x, ddof=0)
        m1 = height_moments(x, ddof=1)
        assert m1.std > m0.std
        assert m1.std == pytest.approx(np.std(x, ddof=1))

    def test_as_dict(self, rng):
        d = height_moments(rng.standard_normal(100)).as_dict()
        assert set(d) == {"mean", "std", "skewness", "kurtosis_excess", "n"}


class TestRms:
    def test_rms_height_removes_mean(self):
        x = np.array([1.0, 3.0])
        assert rms_height(x) == pytest.approx(1.0)

    def test_rms_slope_plane(self):
        X, Y = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        z = 2.0 * X + 0.5 * Y
        sx, sy = rms_slope(z, 1.0, 1.0)
        assert sx == pytest.approx(2.0)
        assert sy == pytest.approx(0.5)

    def test_rms_slope_spacing(self):
        X, _ = np.meshgrid(np.arange(8.0), np.arange(8.0), indexing="ij")
        sx_unit, _ = rms_slope(X, 1.0, 1.0)
        sx_half, _ = rms_slope(X, 0.5, 1.0)
        assert sx_half == pytest.approx(2.0 * sx_unit)

    def test_rms_slope_validation(self):
        with pytest.raises(ValueError):
            rms_slope(np.zeros((4, 4)), 0.0, 1.0)


class TestNormality:
    def test_gaussian_passes(self, rng):
        d = normality_diagnostics(rng.standard_normal(50_000))
        assert abs(d["z_skewness"]) < 4.0
        assert abs(d["z_kurtosis"]) < 4.0

    def test_uniform_fails_kurtosis(self, rng):
        d = normality_diagnostics(rng.uniform(-1, 1, 50_000))
        assert d["kurtosis_excess"] == pytest.approx(-1.2, abs=0.1)
        assert d["z_kurtosis"] < -10.0


class TestTolerance:
    def test_shrinks_with_samples(self):
        assert ensemble_std_tolerance(1.0, 10_000) < ensemble_std_tolerance(1.0, 100)

    def test_scales_with_h(self):
        assert ensemble_std_tolerance(2.0, 100) == pytest.approx(
            2.0 * ensemble_std_tolerance(1.0, 100)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ensemble_std_tolerance(1.0, 1)
