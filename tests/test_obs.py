"""Tests for the ``repro.obs`` tracing & metrics layer.

Covers the null-recorder no-op contract, the metrics registry and its
commutative merge, sink formats (Chrome trace events, metrics JSON,
human summaries), the instrumentation's determinism guarantees (heights
bit-identical with tracing on vs off; counter totals identical across
executor backends for a fixed plan), and the CLI plumbing.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.fields.parameter_map import PlateLattice
from repro.io.npzio import load_surface
from repro.parallel.executor import generate_tiled
from repro.parallel.tiles import TilePlan


@pytest.fixture(autouse=True)
def _pristine_recorder():
    """Every test starts and ends with the null recorder installed."""
    obs.uninstall()
    yield
    obs.uninstall()


@pytest.fixture
def inhomo_gen():
    grid = Grid2D(nx=64, ny=64, lx=64.0, ly=64.0)
    layout = PlateLattice.quadrants(
        64.0, 64.0,
        GaussianSpectrum(h=1.0, clx=4.0, cly=4.0),
        GaussianSpectrum(h=0.5, clx=8.0, cly=8.0),
        GaussianSpectrum(h=2.0, clx=3.0, cly=3.0),
        GaussianSpectrum(h=1.5, clx=6.0, cly=6.0),
    )
    return InhomogeneousGenerator(layout, grid, truncation=(8, 8))


PLAN = TilePlan(total_nx=64, total_ny=64, tile_nx=32, tile_ny=32)


# ---------------------------------------------------------------------------
# Recorder / span API
# ---------------------------------------------------------------------------
class TestRecorder:
    def test_null_recorder_is_default_and_noop(self):
        assert not obs.enabled()
        assert obs.get_recorder() is obs.NULL_RECORDER
        # free functions must not record anywhere
        obs.add("x.count", 5)
        obs.observe("x.hist", 1.0)
        obs.set_gauge("x.gauge", 2.0)
        assert obs.NULL_RECORDER.metrics.as_dict()["counters"] == {}
        # and trace() must hand back the one shared null span
        s1 = obs.trace("x.span")
        s2 = obs.trace("y.span", {"k": 1})
        assert s1 is s2
        with s1:
            pass
        assert s1.duration_s == 0.0

    def test_span_nesting_and_duration(self):
        with obs.recording() as rec:
            with obs.trace("outer"):
                with obs.trace("inner") as inner:
                    pass
                assert inner.duration_s > 0.0
        names = [s[0] for s in rec.spans()]
        # inner closes first
        assert names == ["inner", "outer"]
        stats = rec.span_stats()
        assert stats["outer"]["count"] == 1
        assert stats["outer"]["total_s"] >= stats["inner"]["total_s"]

    def test_recording_restores_previous_recorder(self):
        with obs.recording() as rec:
            assert obs.get_recorder() is rec
            obs.add("a", 1)
        assert obs.get_recorder() is obs.NULL_RECORDER
        assert rec.metrics.counter("a") == 1

    def test_span_attrs_and_annotate(self):
        with obs.recording() as rec:
            with obs.trace("t", {"x0": 1}) as span:
                span.annotate(extra=2)
        (_, _, _, _, _, attrs), = rec.spans()
        assert attrs == {"x0": 1, "extra": 2}

    def test_max_spans_drop_is_counted(self):
        with obs.recording(obs.Recorder(max_spans=2)) as rec:
            for _ in range(5):
                with obs.trace("t"):
                    pass
        assert len(rec.spans()) == 2
        assert rec.metrics.counter("obs.spans_dropped") == 3
        assert rec.span_stats()["t"]["count"] == 5  # aggregates keep counting

    def test_drain_merge_roundtrip(self):
        worker = obs.Recorder()
        with obs.recording(worker):
            with obs.trace("w.span"):
                pass
            obs.add("w.count", 3)
            obs.observe("w.hist", 0.5)
        payload = worker.drain()
        assert worker.spans() == [] and worker.metrics.counters() == {}
        parent = obs.Recorder()
        parent.merge(payload)
        parent.merge({"metrics": {}, "spans": [], "span_stats": {}})
        assert parent.metrics.counter("w.count") == 3
        assert parent.span_stats()["w.span"]["count"] == 1
        assert len(parent.spans()) == 1


# ---------------------------------------------------------------------------
# wire merge edge cases (dist worker payloads after a JSON round-trip)
# ---------------------------------------------------------------------------
class TestMergeWire:
    def _wire(self, recorder):
        """A drain payload as it arrives off the dist socket."""
        return json.loads(json.dumps(recorder.drain()))

    def test_empty_payload_is_harmless(self):
        parent = obs.Recorder()
        parent.merge_wire({})
        assert parent.spans() == []
        assert parent.metrics.counters() == {}

    def test_non_dict_payload_is_rejected(self):
        parent = obs.Recorder()
        with pytest.raises(TypeError, match="dict"):
            parent.merge_wire(["not", "a", "payload"])

    def test_drain_carries_the_retention_bound(self):
        rec = obs.Recorder(max_spans=7)
        assert rec.drain()["max_spans"] == 7

    def test_worker_bound_becomes_a_max_merged_gauge(self):
        parent = obs.Recorder()
        small = obs.Recorder(max_spans=10)
        large = obs.Recorder(max_spans=500)
        parent.merge_wire(self._wire(small))
        parent.merge_wire(self._wire(large))
        parent.merge_wire(self._wire(obs.Recorder(max_spans=10)))
        assert parent.metrics.gauge("obs.worker_max_spans") == 500.0

    def test_toplevel_spans_dropped_folds_into_counter(self):
        parent = obs.Recorder()
        parent.merge_wire({"spans_dropped": 4})
        parent.merge_wire({"spans_dropped": 2})
        assert parent.metrics.counter("obs.spans_dropped") == 6
        # non-positive / non-numeric values are ignored, not summed
        parent.merge_wire({"spans_dropped": -3})
        parent.merge_wire({"spans_dropped": "many"})
        assert parent.metrics.counter("obs.spans_dropped") == 6

    def test_worker_drop_counter_rides_metrics_and_sums(self):
        """A worker that truncated its own span buffer reports it via
        its metrics counter; the run total sums both workers."""
        parent = obs.Recorder()
        for _ in range(2):
            w = obs.Recorder(max_spans=1)
            with obs.recording(w):
                for _ in range(3):
                    with obs.trace("t"):
                        pass
            parent.merge_wire(self._wire(w))
        assert parent.metrics.counter("obs.spans_dropped") == 4
        assert len(parent.spans()) == 2

    def test_overlapping_span_names_aggregate_across_workers(self):
        parent = obs.Recorder()
        for _ in range(2):
            w = obs.Recorder()
            with obs.recording(w):
                with obs.trace("executor.tile"):
                    pass
                with obs.trace("executor.tile"):
                    pass
            # the JSON round-trip turned tuples and aggregates to lists
            parent.merge_wire(self._wire(w))
        stats = parent.span_stats()["executor.tile"]
        assert stats["count"] == 4
        assert stats["min_s"] <= stats["mean_s"] <= stats["max_s"]
        assert len(parent.spans()) == 4

    def test_malformed_spans_and_stats_are_dropped_not_fatal(self):
        parent = obs.Recorder()
        parent.merge_wire({
            "spans": [
                ["good", 0, 10, 1, 1, None],       # valid 6-list
                ["short", 0, 10],                   # wrong arity: dropped
                "not-a-span",                       # wrong type: dropped
            ],
            "span_stats": {
                "good": [1, 10, 10, 10],
                "bad_arity": [1, 10],
                "bad_types": [1, "x", 10, 10],
            },
            "metrics": {"counters": {"w.count": 1}},
        })
        assert len(parent.spans()) == 1
        assert parent.metrics.counter("obs.spans_dropped") == 2
        assert list(parent.span_stats()) == ["good"]
        assert parent.metrics.counter("w.count") == 1

    def test_non_dict_span_stats_is_ignored(self):
        parent = obs.Recorder()
        parent.merge_wire({"span_stats": [1, 2, 3]})
        assert parent.span_stats() == {}


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_histogram_quantile_and_extremes(self):
        m = obs.Metrics()
        for v in (0.001, 0.002, 0.004, 1.0):
            m.observe("h", v)
        h = m.histogram("h")
        assert h.count == 4
        assert h.vmin == pytest.approx(0.001)
        assert h.vmax == pytest.approx(1.0)
        # bucket-resolution quantile: the median falls in a small bucket
        assert h.quantile(0.5) <= 0.01
        assert h.quantile(1.0) >= 0.5

    def test_merge_is_commutative(self):
        def build(values, counts):
            m = obs.Metrics()
            for v in values:
                m.observe("h", v)
            for name, n in counts.items():
                m.inc(name, n)
            return m

        a1 = build([0.001, 0.5], {"c": 2, "only_a": 1})
        b1 = build([0.2], {"c": 5})
        a2 = build([0.001, 0.5], {"c": 2, "only_a": 1})
        b2 = build([0.2], {"c": 5})
        a1.merge(b1.as_dict())
        b2.merge(a2.as_dict())
        assert a1.as_dict() == b2.as_dict()

    def test_gauges_merge_to_max(self):
        a = obs.Metrics()
        a.set_gauge("g", 1.0)
        b = obs.Metrics()
        b.set_gauge("g", 3.0)
        a.merge(b.as_dict())
        assert a.gauge("g") == 3.0

    def test_dict_roundtrip(self):
        m = obs.Metrics()
        m.inc("c", 7)
        m.set_gauge("g", 1.5)
        m.observe("h", 0.25)
        again = obs.Metrics.from_dict(m.as_dict())
        assert again.as_dict() == m.as_dict()

    def test_counters_prefix_filter(self):
        m = obs.Metrics()
        m.inc("engine.fft.blocks", 2)
        m.inc("executor.tiles", 4)
        assert m.counters("engine.") == {"engine.fft.blocks": 2}


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------
class TestSinks:
    def test_chrome_trace_events(self, tmp_path):
        with obs.recording() as rec:
            with obs.trace("engine.fft.forward", {"block": 0}):
                pass
        events = obs.chrome_trace_events(rec)
        assert len(events) == 1
        ev = events[0]
        assert ev["ph"] == "X"
        assert ev["name"] == "engine.fft.forward"
        assert ev["cat"] == "engine"
        assert ev["ts"] >= 0.0 and ev["dur"] > 0.0
        assert ev["args"] == {"block": 0}
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, rec, metadata={"command": "test"})
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == events
        assert doc["otherData"] == {"command": "test"}

    def test_metrics_json_schema(self, tmp_path):
        with obs.recording() as rec:
            obs.add("engine.fft.blocks", 3)
            with obs.trace("executor.tile"):
                pass
        path = tmp_path / "metrics.json"
        obs.write_metrics_json(path, rec)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.obs/v1"
        assert doc["metrics"]["counters"]["engine.fft.blocks"] == 3
        assert doc["span_stats"]["executor.tile"]["count"] == 1

    def test_timings_summary_lists_spans_and_counters(self):
        with obs.recording() as rec:
            obs.add("engine.fft.blocks", 3)
            with obs.trace("executor.tile"):
                pass
        text = obs.timings_summary(rec)
        assert "executor.tile" in text
        assert "engine.fft.blocks" in text

    def test_provenance_timings_empty(self):
        assert "no timing" in obs.provenance_timings({})


# ---------------------------------------------------------------------------
# Determinism contracts
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_heights_bit_identical_tracing_on_vs_off(self, inhomo_gen):
        noise = BlockNoise(seed=11)
        off = generate_tiled(inhomo_gen, noise, PLAN, backend="serial")
        with obs.recording():
            on = generate_tiled(inhomo_gen, noise, PLAN, backend="serial")
        assert np.array_equal(off.heights, on.heights)

    def test_counter_totals_identical_across_backends(self, inhomo_gen):
        """Serial/thread/process recorders aggregate to the same totals.

        Compared over the engine/batch/executor counters, which count
        convolution *work* — the plan-cache counters are excluded by
        construction since each process worker warms its own cache.
        """
        noise = BlockNoise(seed=11)
        totals = {}
        for backend in ("serial", "thread", "process"):
            with obs.recording() as rec:
                generate_tiled(inhomo_gen, noise, PLAN,
                               backend=backend, workers=2)
                totals[backend] = {
                    k: v for k, v in rec.metrics.counters().items()
                    if k.startswith(("engine.fft.", "batch.",
                                     "conv.", "executor.tiles"))
                }
        assert totals["serial"] == totals["thread"] == totals["process"]
        assert totals["serial"]["executor.tiles"] == len(PLAN)
        assert totals["serial"]["engine.fft.forward_ffts"] > 0

    def test_tile_spans_collected_from_process_workers(self, inhomo_gen):
        noise = BlockNoise(seed=11)
        with obs.recording() as rec:
            generate_tiled(inhomo_gen, noise, PLAN,
                           backend="process", workers=2)
        stats = rec.span_stats()
        assert stats["executor.tile"]["count"] == len(PLAN)
        # worker spans carry their own pid; at least one differs from ours
        import os
        pids = {s[3] for s in rec.spans() if s[0] == "executor.tile"}
        assert pids and all(pid != os.getpid() for pid in pids)

    def test_worker_utilization_gauge(self, inhomo_gen):
        noise = BlockNoise(seed=11)
        with obs.recording() as rec:
            generate_tiled(inhomo_gen, noise, PLAN, backend="serial")
        util = rec.metrics.gauge("executor.worker_utilization")
        assert 0.0 < util <= 1.0


class TestHaloGuard:
    def test_zero_output_samples_yields_zero_overhead(self):
        """A degenerate plan must not divide by zero (satellite fix)."""

        class _StubPlan:
            total_nx = 1
            total_ny = 1
            origin_x = 0
            origin_y = 0

            def tiles(self):
                return []

            def halo_samples(self, kernel_shape):
                return (5, 0)

        from repro.core.convolution import ConvolutionGenerator

        grid = Grid2D(nx=16, ny=16, lx=16.0, ly=16.0)
        gen = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=2.0, cly=2.0), grid,
            truncation=(4, 4),
        )
        assert gen.footprint is not None
        surface = generate_tiled(gen, BlockNoise(seed=1), _StubPlan(),
                                 backend="serial")
        assert surface.provenance["halo_overhead"] == 0.0


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------
class TestCli:
    def test_metrics_and_trace_out(self, tmp_path, capsys):
        mpath = tmp_path / "metrics.json"
        tpath = tmp_path / "trace.json"
        npz = tmp_path / "s.npz"
        rc = main([
            "--metrics-out", str(mpath), "--trace-out", str(tpath),
            "generate", "--cl", "6", "--n", "32", "--domain", "32",
            "--seed", "3", "--tile", "16", "--npz", str(npz),
        ])
        assert rc == 0
        metrics = json.loads(mpath.read_text())
        assert metrics["schema"] == "repro.obs/v1"
        assert metrics["metrics"]["counters"]["executor.tiles"] == 4
        assert "cli.generate" in metrics["span_stats"]
        trace = json.loads(tpath.read_text())
        assert any(ev["name"] == "executor.run"
                   for ev in trace["traceEvents"])
        # the emitted surface carries the metrics snapshot
        surface = load_surface(npz)
        counters = surface.provenance["obs_metrics"]["counters"]
        assert counters["executor.tiles"] == 4

    def test_cli_restores_null_recorder(self, tmp_path, capsys):
        main([
            "--metrics-out", str(tmp_path / "m.json"),
            "generate", "--cl", "6", "--n", "16", "--domain", "16",
        ])
        assert not obs.enabled()

    def test_no_flags_means_no_tracing(self, tmp_path, capsys):
        npz = tmp_path / "s.npz"
        rc = main(["generate", "--cl", "6", "--n", "16", "--domain", "16",
                   "--npz", str(npz)])
        assert rc == 0
        assert "obs_metrics" not in load_surface(npz).provenance

    def test_inspect_timings(self, tmp_path, capsys):
        npz = tmp_path / "s.npz"
        main([
            "--metrics-out", str(tmp_path / "m.json"),
            "generate", "--cl", "6", "--n", "32", "--domain", "32",
            "--tile", "16", "--npz", str(npz),
        ])
        capsys.readouterr()
        rc = main(["inspect", str(npz), "--timings"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan_cache" in out
        assert "executor.tiles" in out

    def test_figure_tiled_backend(self, tmp_path, capsys):
        npz = tmp_path / "f.npz"
        rc = main([
            "figure", "fig1", "--n", "32", "--domain", "32",
            "--tile", "16", "--backend", "thread", "--workers", "2",
            "--npz", str(npz),
        ])
        assert rc == 0
        surface = load_surface(npz)
        assert surface.provenance["method"] == "tiled"
        assert surface.provenance["figure"] == "fig1"
        # tiled figure equals the serial tiled figure bit-for-bit
        rc = main([
            "figure", "fig1", "--n", "32", "--domain", "32",
            "--tile", "16", "--npz", str(tmp_path / "f2.npz"),
        ])
        assert rc == 0
        other = load_surface(tmp_path / "f2.npz")
        assert np.array_equal(surface.heights, other.heights)
