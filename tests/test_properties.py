"""Property-based tests (hypothesis) on the core invariants.

These encode the paper's mathematical structure as properties that must
hold for *any* valid parameters, not just the fixture values:

* spectra are non-negative, even, and integrate to h^2 (via the discrete
  weight sum on an adequate grid);
* autocorrelations peak at zero lag with value h^2 and are even;
* weighting arrays fold symmetrically; kernels are symmetric and carry
  the variance as energy;
* Hermitian random arrays stay Hermitian under the construction;
* plate/point blend weights always form a partition of unity in [0, 1];
* the convolution and direct DFT methods agree for any spectrum/noise.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.convolution import convolve_full
from repro.core.direct_dft import (
    direct_surface_from_array,
    hermitian_array_from_noise,
    hermitian_random_array,
    is_hermitian,
)
from repro.core.grid import Grid2D, folded_frequency_index
from repro.core.inhomogeneous import point_oriented_weights
from repro.core.rng import BlockNoise, box_muller
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.core.weights import build_kernel, weight_array
from repro.fields.transition import cosine, linear, ramp_weight, smoothstep

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------
heights = st.floats(min_value=0.05, max_value=10.0)
lengths = st.floats(min_value=1.0, max_value=50.0)
orders = st.floats(min_value=1.1, max_value=8.0)


@st.composite
def spectra(draw):
    kind = draw(st.sampled_from(["gaussian", "power_law", "exponential"]))
    h = draw(heights)
    clx = draw(lengths)
    cly = draw(lengths)
    if kind == "gaussian":
        return GaussianSpectrum(h=h, clx=clx, cly=cly)
    if kind == "exponential":
        return ExponentialSpectrum(h=h, clx=clx, cly=cly)
    return PowerLawSpectrum(h=h, clx=clx, cly=cly, order=draw(orders))


@st.composite
def grids(draw):
    nx = draw(st.sampled_from([8, 16, 32]))
    ny = draw(st.sampled_from([8, 16, 32]))
    dx = draw(st.floats(min_value=0.5, max_value=4.0))
    dy = draw(st.floats(min_value=0.5, max_value=4.0))
    return Grid2D(nx=nx, ny=ny, lx=nx * dx, ly=ny * dy)


# --------------------------------------------------------------------------
# Spectrum properties
# --------------------------------------------------------------------------
@given(spec=spectra(), kx=st.floats(-5, 5), ky=st.floats(-5, 5))
def test_spectrum_nonnegative_and_even(spec, kx, ky):
    w = float(spec.spectrum(kx, ky))
    assert w >= 0.0
    assert w == pytest.approx(float(spec.spectrum(-kx, -ky)), rel=1e-12)


@given(spec=spectra(), x=st.floats(-100, 100), y=st.floats(-100, 100))
def test_acf_bounded_by_variance_and_even(spec, x, y):
    rho = float(spec.autocorrelation(x, y))
    assert rho <= spec.variance + 1e-9 * spec.variance
    assert rho == pytest.approx(float(spec.autocorrelation(-x, -y)), rel=1e-9,
                                abs=1e-12)


@given(spec=spectra())
def test_acf_peak_at_zero(spec):
    assert float(spec.autocorrelation(0.0, 0.0)) == pytest.approx(
        spec.variance, rel=1e-9
    )


# --------------------------------------------------------------------------
# Weight/kernel properties
# --------------------------------------------------------------------------
@given(spec=spectra(), grid=grids())
@settings(max_examples=40, deadline=None)
def test_weight_array_fold_symmetry(spec, grid):
    w = weight_array(spec, grid)
    assert np.all(w >= 0)
    assert np.allclose(w[1:, :], w[1:, :][::-1, :], rtol=1e-12)
    assert np.allclose(w[:, 1:], w[:, 1:][:, ::-1], rtol=1e-12)


@given(spec=spectra(), grid=grids())
@settings(max_examples=30, deadline=None)
def test_kernel_energy_equals_weight_sum(spec, grid):
    k = build_kernel(spec, grid)
    assert k.energy == pytest.approx(float(weight_array(spec, grid).sum()),
                                     rel=1e-9)


@given(n=st.integers(1, 64))
def test_folded_index_involution(n):
    f = folded_frequency_index(n)
    assert f[0] == 0
    assert np.all(f <= n // 2)
    # folding is symmetric: f[m] == f[n - m] for m in 1..n-1
    if n > 1:
        assert np.array_equal(f[1:], f[1:][::-1])


# --------------------------------------------------------------------------
# RNG properties
# --------------------------------------------------------------------------
@given(
    u1=st.floats(0.0, 2 * np.pi),
    u2=st.floats(min_value=1e-10, max_value=1.0),
)
def test_box_muller_finite(u1, u2):
    x = float(box_muller(u1, u2))
    assert np.isfinite(x)
    # |X| <= sqrt(-2 log u2)
    assert abs(x) <= np.sqrt(-2.0 * np.log(u2)) + 1e-12


@given(
    seed=st.integers(0, 2**32),
    x0=st.integers(-100, 100),
    y0=st.integers(-100, 100),
    nx=st.integers(1, 20),
    ny=st.integers(1, 20),
    block=st.sampled_from([4, 16, 64]),
)
@settings(max_examples=25, deadline=None)
def test_block_noise_window_consistency(seed, x0, y0, nx, ny, block):
    bn = BlockNoise(seed=seed, block=block)
    full = bn.window(x0 - 3, y0 - 3, nx + 6, ny + 6)
    sub = bn.window(x0, y0, nx, ny)
    assert np.array_equal(full[3 : 3 + nx, 3 : 3 + ny], sub)


# --------------------------------------------------------------------------
# Hermitian / synthesis properties
# --------------------------------------------------------------------------
@given(grid=grids(), seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_hermitian_construction_invariant(grid, seed):
    u = hermitian_random_array(grid, seed=seed)
    assert is_hermitian(u)


@given(spec=spectra(), seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_methods_equivalent_any_spectrum(spec, seed):
    grid = Grid2D(nx=16, ny=16, lx=32.0, ly=32.0)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(grid.shape)
    f_conv = convolve_full(spec, grid, noise=x)
    f_dir = direct_surface_from_array(spec, grid, hermitian_array_from_noise(x))
    scale = max(float(np.max(np.abs(f_conv))), 1e-12)
    assert np.max(np.abs(f_conv - f_dir)) < 1e-9 * scale


# --------------------------------------------------------------------------
# Transition / blending properties
# --------------------------------------------------------------------------
@given(
    sd=st.lists(st.floats(-100, 100), min_size=1, max_size=32),
    t=st.floats(min_value=0.01, max_value=50.0),
    profile=st.sampled_from([linear, smoothstep, cosine]),
)
def test_ramp_weight_bounds_and_complement(sd, t, profile):
    # t > 0: at a hard edge (t == 0) the boundary point belongs to both a
    # region and its complement by the closed-membership convention, so
    # the complement identity intentionally does not hold there.
    sd_arr = np.asarray(sd)
    w = ramp_weight(sd_arr, t, profile)
    assert np.all((w >= 0.0) & (w <= 1.0))
    w_comp = ramp_weight(-sd_arr, t, profile)
    # all three shipped profiles are antisymmetric about t = 1/2
    assert np.allclose(w + w_comp, 1.0, atol=1e-9)


@given(
    n_points=st.integers(2, 6),
    n_queries=st.integers(1, 40),
    t=st.floats(0.0, 40.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_point_oriented_weights_partition(n_points, n_queries, t, seed):
    rng = np.random.default_rng(seed)
    px = rng.uniform(0, 100, n_points)
    py = rng.uniform(0, 100, n_points)
    assume(
        np.min(
            np.hypot(px[:, None] - px[None, :], py[:, None] - py[None, :])
            + np.eye(n_points) * 1e9
        )
        > 1e-6
    )
    qx = rng.uniform(-20, 120, n_queries)
    qy = rng.uniform(-20, 120, n_queries)
    w = point_oriented_weights(px, py, qx, qy, half_width=t)
    assert w.shape == (n_points, n_queries)
    assert np.all((w >= -1e-12) & (w <= 1.0 + 1e-12))
    assert np.allclose(w.sum(axis=0), 1.0, atol=1e-9)


@given(seed=st.integers(0, 10_000), t=st.floats(0.5, 30.0))
@settings(max_examples=30, deadline=None)
def test_point_oriented_nearest_weight_at_least_half(seed, t):
    rng = np.random.default_rng(seed)
    px, py = rng.uniform(0, 100, 4), rng.uniform(0, 100, 4)
    assume(
        np.min(np.hypot(px[:, None] - px, py[:, None] - py) + np.eye(4) * 1e9)
        > 1.0
    )
    qx, qy = rng.uniform(0, 100, 25), rng.uniform(0, 100, 25)
    w = point_oriented_weights(px, py, qx, qy, half_width=t)
    d2 = (px[:, None] - qx) ** 2 + (py[:, None] - qy) ** 2
    nearest = np.argmin(d2, axis=0)
    assert np.all(w[nearest, np.arange(25)] >= 0.5 - 1e-9)
