"""Tests for the kernel-plan cache behind the FFT engine.

Satellite of the overlap-save engine PR: pins the cache's observable
contract — hit/miss/eviction accounting, the LRU bound, and the
normalised-plan sharing that lets spectra differing only in ``h`` reuse
one kernel transform.
"""

import threading

import numpy as np
import pytest

from repro.core.convolution import apply_kernel_valid_fft, resolve_kernel
from repro.core.engine import (
    DEFAULT_MAX_BLOCK_ELEMS,
    KernelPlanCache,
    choose_block_shape,
    plan_cache,
)
from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.core.weights import Kernel


@pytest.fixture
def grid():
    return Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)


def _kernel(grid, h=1.0, cl=10.0, trunc=(6, 6)):
    return resolve_kernel(GaussianSpectrum(h=h, clx=cl, cly=cl), grid, trunc)


def _anon_kernel(seed=0, shape=(9, 9)):
    vals = np.random.default_rng(seed).standard_normal(shape)
    return Kernel(values=vals, cx=shape[0] // 2, cy=shape[1] // 2,
                  dx=1.0, dy=1.0)


class TestCounters:
    def test_miss_then_hits(self, grid):
        cache = KernelPlanCache()
        kern = _kernel(grid)
        p1 = cache.get_plan(kern, (32, 32))
        p2 = cache.get_plan(kern, (32, 32))
        assert p1 is p2
        s = cache.stats()
        assert (s.misses, s.hits, s.size) == (1, 1, 1)
        assert s.lookups == 2
        assert s.as_dict()["maxsize"] == 32

    def test_distinct_block_shapes_are_distinct_plans(self, grid):
        cache = KernelPlanCache()
        kern = _kernel(grid)
        cache.get_plan(kern, (32, 32))
        cache.get_plan(kern, (40, 32))
        s = cache.stats()
        assert (s.misses, s.hits, s.size) == (2, 0, 2)

    def test_clear_resets(self, grid):
        cache = KernelPlanCache()
        cache.get_plan(_kernel(grid), (32, 32))
        cache.clear()
        s = cache.stats()
        assert (s.hits, s.misses, s.evictions, s.size) == (0, 0, 0, 0)
        assert len(cache) == 0


class TestEviction:
    def test_lru_bound(self, grid):
        cache = KernelPlanCache(maxsize=2)
        kerns = [_kernel(grid, cl=c) for c in (8.0, 10.0, 12.0)]
        for k in kerns:
            cache.get_plan(k, (32, 32))
        s = cache.stats()
        assert s.size == 2
        assert s.evictions == 1
        # the oldest (cl=8) was evicted; re-requesting it is a miss
        cache.get_plan(kerns[0], (32, 32))
        assert cache.stats().misses == 4

    def test_lru_recency_order(self, grid):
        cache = KernelPlanCache(maxsize=2)
        a, b, c = (_kernel(grid, cl=cl) for cl in (8.0, 10.0, 12.0))
        cache.get_plan(a, (32, 32))
        cache.get_plan(b, (32, 32))
        cache.get_plan(a, (32, 32))  # refresh a; b is now LRU
        cache.get_plan(c, (32, 32))  # evicts b
        hits_before = cache.stats().hits
        cache.get_plan(a, (32, 32))
        assert cache.stats().hits == hits_before + 1

    def test_configure_shrinks(self, grid):
        cache = KernelPlanCache(maxsize=8)
        for c in (8.0, 10.0, 12.0):
            cache.get_plan(_kernel(grid, cl=c), (32, 32))
        cache.configure(1)
        s = cache.stats()
        assert s.size == 1
        assert s.evictions == 2

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            KernelPlanCache(maxsize=0)
        with pytest.raises(ValueError):
            KernelPlanCache().configure(-1)


class TestHSharing:
    """Spectra differing only in h reuse one normalised plan."""

    def test_one_plan_two_heights(self, grid):
        cache = KernelPlanCache()
        k1 = _kernel(grid, h=1.0)
        k2 = _kernel(grid, h=2.5)
        assert k1.plan_key == k2.plan_key
        noise = np.random.default_rng(1).standard_normal((40, 40))
        a = apply_kernel_valid_fft(k1, noise, cache=cache)
        b = apply_kernel_valid_fft(k2, noise, cache=cache)
        s = cache.stats()
        assert (s.misses, s.hits, s.size) == (1, 1, 1)
        # linear in h: the shared plan rescales bit-exactly
        assert np.array_equal(b, 2.5 * a)

    def test_warm_order_does_not_matter(self, grid):
        # build the plan from h=3 first, then request h=1: results must
        # match the plan built from h=1 directly.  Not bitwise — the two
        # kernels' values differ by rounding (sqrt(9 S)/3 vs sqrt(S)) —
        # but far inside the engine's 1e-10 equivalence contract.
        noise = np.random.default_rng(2).standard_normal((40, 40))
        c1 = KernelPlanCache()
        apply_kernel_valid_fft(_kernel(grid, h=3.0), noise, cache=c1)
        warm = apply_kernel_valid_fft(_kernel(grid, h=1.0), noise, cache=c1)
        cold = apply_kernel_valid_fft(
            _kernel(grid, h=1.0), noise, cache=KernelPlanCache()
        )
        assert np.max(np.abs(warm - cold)) <= 1e-12

    def test_different_cl_do_not_share(self, grid):
        k1 = _kernel(grid, cl=10.0)
        k2 = _kernel(grid, cl=12.0)
        assert k1.plan_key != k2.plan_key

    def test_anonymous_kernels_use_fingerprint(self):
        k = _anon_kernel(seed=3)
        assert k.identity is None
        assert k.plan_key[0] == "fp"
        same = _anon_kernel(seed=3)
        other = _anon_kernel(seed=4)
        assert k.plan_key == same.plan_key
        assert k.plan_key != other.plan_key

    def test_fingerprint_kernels_cache_too(self):
        cache = KernelPlanCache()
        k = _anon_kernel(seed=5)
        noise = np.random.default_rng(5).standard_normal((30, 30))
        a = apply_kernel_valid_fft(k, noise, cache=cache)
        b = apply_kernel_valid_fft(_anon_kernel(seed=5), noise, cache=cache)
        s = cache.stats()
        assert (s.misses, s.hits) == (1, 1)
        assert np.array_equal(a, b)


class TestBlockPolicy:
    def test_whole_window_when_small(self):
        bx, by = choose_block_shape((100, 100), (17, 17))
        assert bx >= 100 and by >= 100
        assert bx * by <= DEFAULT_MAX_BLOCK_ELEMS

    def test_split_when_large(self):
        big = 1 << 14  # 16384 per axis would exceed the element bound
        bx, by = choose_block_shape((big, big), (129, 129))
        assert bx * by <= DEFAULT_MAX_BLOCK_ELEMS
        assert bx >= 129 and by >= 129

    def test_block_never_exceeds_window(self):
        bx, by = choose_block_shape((64, 64), (9, 9))
        # padded to fast length, but bounded by a small window's extent
        assert bx <= 64 + 16 and by <= 64 + 16


class TestThreadSafety:
    def test_concurrent_get_plan(self, grid):
        cache = KernelPlanCache(maxsize=4)
        kern = _kernel(grid)
        plans = []

        def work():
            for _ in range(50):
                plans.append(cache.get_plan(kern, (32, 32)))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(p) for p in plans}) == 1
        s = cache.stats()
        assert s.lookups == 400
        assert s.misses == 1


class TestProcessWideCache:
    def test_singleton_exists_and_is_bounded(self):
        s = plan_cache.stats()
        assert s.maxsize >= 1
        assert s.size <= s.maxsize


class TestDtypeKeying:
    """dtype is part of the plan key: a float32 plan must never be
    served to a float64 request (or vice versa) — a silent precision
    swap would corrupt every downstream surface."""

    def test_dtypes_are_distinct_plans(self, grid):
        cache = KernelPlanCache()
        kern = _kernel(grid)
        p64 = cache.get_plan(kern, (32, 32))  # default float64
        p32 = cache.get_plan(kern, (32, 32), np.float32)
        assert p64 is not p32
        s = cache.stats()
        assert (s.misses, s.hits, s.size) == (2, 0, 2)
        assert p64.dtype == np.float64 and p64.kfft.dtype == np.complex128
        assert p32.dtype == np.float32 and p32.kfft.dtype == np.complex64

    def test_cache_never_crosses_precisions(self, grid):
        cache = KernelPlanCache()
        kern = _kernel(grid)
        first32 = cache.get_plan(kern, (32, 32), np.float32)
        # a warm float32 entry must not satisfy a float64 lookup...
        p64 = cache.get_plan(kern, (32, 32), np.float64)
        assert p64 is not first32 and p64.dtype == np.float64
        # ...and each precision hits its own entry afterwards
        assert cache.get_plan(kern, (32, 32), np.float32) is first32
        assert cache.get_plan(kern, (32, 32), np.float64) is p64
        s = cache.stats()
        assert (s.misses, s.hits) == (2, 2)

    def test_h_sharing_is_per_dtype(self, grid):
        # spectra differing only in h share a plan *within* a dtype,
        # never across dtypes
        cache = KernelPlanCache()
        a = _kernel(grid, h=1.0)
        b = _kernel(grid, h=2.5)
        p_a32 = cache.get_plan(a, (32, 32), np.float32)
        p_b32 = cache.get_plan(b, (32, 32), np.float32)
        p_b64 = cache.get_plan(b, (32, 32), np.float64)
        assert p_a32 is p_b32
        assert p_b64 is not p_b32
        s = cache.stats()
        assert (s.misses, s.hits, s.size) == (2, 1, 2)

    def test_rejects_unsupported_dtype(self, grid):
        cache = KernelPlanCache()
        with pytest.raises(ValueError, match="float16"):
            cache.get_plan(_kernel(grid), (32, 32), np.float16)


class TestSelfAffineKeys:
    """Cache-key behaviour of the self-affine family: distinct
    ``(hurst, qr)`` must never share a plan, while sigma — the linear
    amplitude, aliased to ``h`` by ``with_params`` — must."""

    def _kernel(self, grid, sigma=1.0, hurst=0.8, qr=0.4, trunc=(12, 12)):
        from repro.core.spectra_ext import SelfAffineSpectrum

        return resolve_kernel(
            SelfAffineSpectrum(sigma=sigma, hurst=hurst, qr=qr),
            grid, trunc,
        )

    def test_sigma_shares_plan(self, grid):
        a = self._kernel(grid, sigma=1.0)
        b = self._kernel(grid, sigma=3.0)
        assert a.plan_key == b.plan_key
        assert a.plan_key[0] == "id"  # hashable identity, not fingerprint

    def test_hurst_does_not_share(self, grid):
        assert (self._kernel(grid, hurst=0.5).plan_key
                != self._kernel(grid, hurst=0.8).plan_key)

    def test_qr_does_not_share(self, grid):
        assert (self._kernel(grid, qr=0.2).plan_key
                != self._kernel(grid, qr=0.4).plan_key)

    def test_distinct_from_other_families(self, grid):
        assert self._kernel(grid).plan_key != _kernel(grid).plan_key

    def test_property_key_distinctness(self, grid):
        """Any two parameter points that differ in (hurst, qr) map to
        different plan keys; any two that differ only in sigma map to
        the same one."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        params = st.tuples(
            st.floats(min_value=0.1, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.05, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.1, max_value=1.5,
                      allow_nan=False, allow_infinity=False),
        )

        @given(a=params, b=params)
        @settings(max_examples=40, deadline=None)
        def check(a, b):
            ka = self._kernel(grid, sigma=a[0], hurst=a[1], qr=a[2])
            kb = self._kernel(grid, sigma=b[0], hurst=b[1], qr=b[2])
            if (a[1], a[2]) == (b[1], b[2]):
                assert ka.plan_key == kb.plan_key
            else:
                assert ka.plan_key != kb.plan_key

        check()
