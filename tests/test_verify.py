"""Tests for the ``repro.verify`` out-of-core verification subsystem.

The headline contract is the streamed-vs-in-memory differential: the
store-backed verification pass and the in-memory pass execute the
*identical* float64 accumulation, so on a 4096^2 store their metrics
agree bit for bit — asserted here literally, alongside bit-determinism
across repeated runs and a no-materialisation guard (the streamed pass
never touches ``SurfaceStore.heights``).

The smaller unit layers check ``stream_statistics`` against independent
numpy/``repro.stats`` computations of the same quantities, the report
schema round trip (with a hypothesis property), the error paths, and
the ``repro verify`` CLI surface.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.core.spectra_ext import SelfAffineSpectrum
from repro.io.store import SurfaceStore
from repro.parallel import TilePlan, generate_tiled
from repro.stats.spectral import welch_spectrum
from repro.verify import (
    REPORT_NAME,
    VERIFY_SCHEMA,
    MetricResult,
    ReportError,
    VerifyConfig,
    VerifyError,
    VerifyReport,
    choose_segment,
    load_report,
    stream_statistics,
    verify_heights,
    verify_job,
    verify_store,
    write_report,
)

pytestmark = pytest.mark.verify

N_BIG = 4096
TILE_BIG = 1024
SEED_BIG = 42

SPECTRUM = SelfAffineSpectrum(sigma=1.0, hurst=0.8, qr=0.4)


def _array_reader(h):
    def read(x0, y0, wx, wy):
        return h[x0 : x0 + wx, y0 : y0 + wy]

    return read


# ---------------------------------------------------------------------------
# choose_segment
# ---------------------------------------------------------------------------
class TestChooseSegment:
    def test_default_on_reference_workload(self):
        assert choose_segment((N_BIG, N_BIG)) == 256

    def test_halves_until_two_fit(self):
        assert choose_segment((300, 300)) == 128
        assert choose_segment((96, 96)) == 32
        assert choose_segment((512, 96)) == 32  # shorter axis governs

    def test_tiny_surface_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            choose_segment((4, 4096))

    def test_requested_validated(self):
        assert choose_segment((96, 96), 48) == 48
        with pytest.raises(ValueError, match="even"):
            choose_segment((96, 96), 7)
        with pytest.raises(ValueError, match="exceeds"):
            choose_segment((96, 96), 128)


# ---------------------------------------------------------------------------
# stream_statistics vs independent in-memory computations
# ---------------------------------------------------------------------------
class TestStreamStatistics:
    @pytest.fixture(scope="class")
    def field(self):
        rng = np.random.default_rng(7)
        return rng.normal(size=(96, 96)) + 0.3

    def test_moments_match_numpy(self, field):
        raw = stream_statistics(_array_reader(field), field.shape,
                                1.0, 1.0, segment=32)
        assert raw["coverage"] == 1.0
        np.testing.assert_allclose(raw["mean"], field.mean(), rtol=1e-12)
        np.testing.assert_allclose(raw["var"], field.var(), rtol=1e-12)
        np.testing.assert_allclose(raw["rms"], field.std(), rtol=1e-12)

    def test_gradient_matches_numpy_diff(self, field):
        dx, dy = 2.0, 0.5
        raw = stream_statistics(_array_reader(field), field.shape,
                                dx, dy, segment=32)
        gx = np.diff(field, axis=0) / dx
        gy = np.diff(field, axis=1) / dy
        assert raw["grad_pairs"] == (gx.size, gy.size)
        np.testing.assert_allclose(raw["grad_msq_x"], (gx**2).mean(),
                                   rtol=1e-12)
        np.testing.assert_allclose(raw["grad_msq_y"], (gy**2).mean(),
                                   rtol=1e-12)

    def test_acf_matches_direct_pairs(self, field):
        lag = 5
        raw = stream_statistics(_array_reader(field), field.shape,
                                1.0, 1.0, segment=32,
                                acf_lags=((lag, 0), (0, lag)))
        for key, (left, right) in {
            (lag, 0): (field[:-lag, :], field[lag:, :]),
            (0, lag): (field[:, :-lag], field[:, lag:]),
        }.items():
            got = raw["acf"][key]
            assert got["count"] == left.size
            cov = (left * right).mean() - left.mean() * right.mean()
            np.testing.assert_allclose(got["cov"], cov, rtol=1e-10)
            np.testing.assert_allclose(got["coef"], cov / field.var(),
                                       rtol=1e-10)

    def test_welch_psd_parity(self, field):
        """Streamed PSD == ``stats.welch_spectrum`` when the segment
        divides the shape (same patches, same taper, same norm)."""
        grid = Grid2D(nx=96, ny=96, lx=96.0, ly=96.0)
        raw = stream_statistics(_array_reader(field), field.shape,
                                1.0, 1.0, segment=32)
        sub, expected = welch_spectrum(field, grid, segments=(3, 3))
        assert raw["psd_grid"].shape == sub.shape
        assert raw["psd_windows"] == 9
        np.testing.assert_allclose(raw["psd"], expected, rtol=1e-12)

    def test_partial_coverage_crops(self, field):
        raw = stream_statistics(_array_reader(field), field.shape,
                                1.0, 1.0, segment=40)
        crop = field[:80, :80]
        assert raw["crop"] == (80, 80)
        assert raw["coverage"] == pytest.approx((80 * 80) / (96 * 96))
        np.testing.assert_allclose(raw["var"], crop.var(), rtol=1e-12)

    def test_lag_validation(self, field):
        read = _array_reader(field)
        with pytest.raises(ValueError, match="axis-aligned"):
            stream_statistics(read, field.shape, 1.0, 1.0, segment=32,
                              acf_lags=((3, 3),))
        with pytest.raises(ValueError, match="smaller than segment"):
            stream_statistics(read, field.shape, 1.0, 1.0, segment=32,
                              acf_lags=((32, 0),))

    def test_bad_reader_shape_rejected(self, field):
        def read(x0, y0, wx, wy):
            return np.zeros((wx, max(wy - 1, 1)))

        with pytest.raises(ValueError, match="reader returned"):
            stream_statistics(read, field.shape, 1.0, 1.0, segment=32)


# ---------------------------------------------------------------------------
# The 4096^2 streamed-vs-in-memory differential (the acceptance gate)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def big_store(tmp_path_factory):
    """A 4096^2 self-affine surface written through the store, with the
    spectrum recipe in the manifest meta (as the jobs runner records)."""
    root = tmp_path_factory.mktemp("verify-big")
    grid = Grid2D(nx=N_BIG, ny=N_BIG, lx=float(N_BIG), ly=float(N_BIG))
    gen = ConvolutionGenerator(SPECTRUM, grid, truncation=(16, 16))
    plan = TilePlan(total_nx=N_BIG, total_ny=N_BIG,
                    tile_nx=TILE_BIG, tile_ny=TILE_BIG)
    store = SurfaceStore.create(
        root / "s", shape=(N_BIG, N_BIG), chunk=(TILE_BIG, TILE_BIG),
        meta={"seed": SEED_BIG, "spectrum": SPECTRUM.to_dict()},
    )
    generate_tiled(gen, BlockNoise(seed=SEED_BIG), plan,
                   backend="serial", out=store)
    store.close()
    yield root / "s"


class TestStreamedDifferential:
    pytestmark = [pytest.mark.verify, pytest.mark.store]

    @pytest.fixture(scope="class")
    def reports(self, big_store):
        with SurfaceStore.open(big_store, "r", ledger=False) as store:
            heights = np.array(store.heights())
        streamed = verify_store(big_store)
        in_memory = verify_heights(heights, SPECTRUM, dx=1.0, dy=1.0)
        return streamed, in_memory, heights

    def test_passes_with_spectrum_from_manifest(self, reports):
        """The acceptance path: ``verify_store`` recovers the spectrum
        from the store manifest alone and the surface passes every
        gate, including the fitted Hurst exponent."""
        streamed, _, _ = reports
        assert streamed.passed
        assert streamed.failures() == []
        hurst = streamed.metric("hurst_fit")
        assert hurst.passed is True
        assert abs(hurst.measured - 0.8) < hurst.tolerance

    def test_streamed_equals_in_memory_bitwise(self, reports):
        """Identical windows, identical float64 ops: every metric agrees
        to the last bit between the store and in-memory passes."""
        streamed, in_memory, _ = reports
        assert len(streamed.metrics) == len(in_memory.metrics)
        for ms, mm in zip(streamed.metrics, in_memory.metrics):
            assert ms.name == mm.name
            assert ms.measured == mm.measured  # bitwise, no tolerance
            assert ms.target == mm.target
            assert ms.tolerance == mm.tolerance
            assert ms.passed == mm.passed

    def test_bit_deterministic_across_runs(self, big_store, reports):
        streamed, _, _ = reports
        again = verify_store(big_store)
        assert again.core_dict() == streamed.core_dict()

    def test_never_materialises(self, big_store, monkeypatch):
        """The streamed pass reads bounded windows through
        ``read_window`` only — never the whole surface at once."""
        requests = []
        original = SurfaceStore.read_window

        def spy(self, x0, y0, nx, ny):
            requests.append((nx, ny))
            return original(self, x0, y0, nx, ny)

        monkeypatch.setattr(SurfaceStore, "read_window", spy)
        report = verify_store(big_store)
        assert report.passed
        seg = report.config["segment"]
        halo = max(nx - seg for nx, _ in requests)
        assert requests, "streamed pass bypassed read_window"
        # every read is one segment window plus a small lag/gradient halo
        assert all(nx <= seg + halo and ny <= seg + halo
                   for nx, ny in requests)
        peak = max(nx * ny for nx, ny in requests)
        assert peak <= (seg + halo) ** 2
        assert peak * 16 < N_BIG * N_BIG  # orders below materialisation

    def test_rms_differential_vs_numpy(self, reports):
        """Streamed RMS vs the straight numpy reduction on the
        materialised array.  The gated report samples a strided subset
        of windows, so it only agrees statistically; a full stride-1
        pass over the same data must agree to float64 round-off."""
        streamed, _, heights = reports
        assert streamed.metric("rms_height").measured == pytest.approx(
            float(heights.std()), rel=0.02
        )
        seg = streamed.config["segment"]
        raw = stream_statistics(_array_reader(heights), heights.shape,
                                1.0, 1.0, segment=seg)
        assert raw["rms"] == pytest.approx(float(heights.std()), rel=1e-9)

    def test_psd_differential_vs_welch(self, reports):
        """Streamed Welch PSD band deviation recomputed from
        ``stats.welch_spectrum`` on the materialised array."""
        streamed, _, heights = reports
        seg = streamed.config["segment"]
        grid = Grid2D(nx=N_BIG, ny=N_BIG, lx=float(N_BIG), ly=float(N_BIG))
        _, est = welch_spectrum(heights, grid,
                                segments=(N_BIG // seg, N_BIG // seg))
        raw = stream_statistics(_array_reader(heights), heights.shape,
                                1.0, 1.0, segment=seg)
        np.testing.assert_allclose(raw["psd"], est, rtol=1e-9)


# ---------------------------------------------------------------------------
# Report schema: round trip + hypothesis property
# ---------------------------------------------------------------------------
def _report(metrics=(), passed=True):
    return VerifyReport(
        surface={"store": None, "shape": [8, 8], "dx": 1.0, "dy": 1.0},
        spectrum=SPECTRUM.to_dict(),
        metrics=tuple(metrics),
        config={"segment": 4, "window": "hann"},
        passed=passed,
        timings={"seconds": 0.01},
    )


class TestReport:
    def test_schema_tag(self):
        doc = _report().to_dict()
        assert doc["schema"] == VERIFY_SCHEMA

    def test_rejects_wrong_schema(self):
        doc = _report().to_dict()
        doc["schema"] = "repro.verify/v0"
        with pytest.raises(ReportError, match="schema"):
            VerifyReport.from_dict(doc)

    def test_core_dict_excludes_timings(self):
        assert "timings" not in _report().core_dict()

    finite = st.floats(allow_nan=False, allow_infinity=False,
                       width=64)

    @given(
        measured=finite, target=finite,
        tolerance=st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False),
        passed=st.none() | st.booleans(),
        name=st.sampled_from(["rms_height", "hurst_fit", "acf_lag_x"]),
        report_passed=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, measured, target, tolerance,
                                 passed, name, report_passed):
        """Any report survives JSON round trip equal, metric for
        metric, including informational (``passed: null``) entries."""
        metric = MetricResult(name=name, measured=measured, target=target,
                              tolerance=tolerance, passed=passed,
                              detail={"bins": 3})
        report = _report(metrics=(metric,), passed=report_passed)
        again = VerifyReport.from_json(report.to_json())
        assert again == report
        assert again.metric(name) == metric
        assert again.metric(name).detail == {"bins": 3}

    def test_failures_lists_only_hard_fails(self):
        metrics = (
            MetricResult("a", 1.0, 0.0, 0.5, False),
            MetricResult("b", 0.1, 0.0, 0.5, True),
            MetricResult("c", 9.0, 0.0, 0.5, None),  # informational
        )
        report = _report(metrics=metrics, passed=False)
        assert [m.name for m in report.failures()] == ["a"]

    def test_write_and_load(self, tmp_path):
        report = _report()
        path = write_report(report, tmp_path / REPORT_NAME)
        assert load_report(path) == report
        assert not (tmp_path / (REPORT_NAME + ".tmp")).exists()


# ---------------------------------------------------------------------------
# Entry-point error paths
# ---------------------------------------------------------------------------
class TestErrors:
    def test_heights_must_be_2d(self):
        with pytest.raises(VerifyError, match="2D"):
            verify_heights(np.zeros(16), SPECTRUM)

    def test_incomplete_store_refused(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(64, 64),
                                    chunk=(32, 32))
        store.write_chunk(0, np.zeros((32, 32)))
        store.close()
        with pytest.raises(VerifyError, match="incomplete"):
            verify_store(tmp_path / "s")

    def test_job_requires_manifest(self, tmp_path):
        with pytest.raises(VerifyError, match="manifest"):
            verify_job(tmp_path / "nowhere")

    def test_job_requires_store_backing(self, tmp_path):
        ck = tmp_path / "ck"
        ck.mkdir()
        (ck / "manifest.json").write_text(json.dumps({"state": "complete"}))
        with pytest.raises(VerifyError, match="store-backed"):
            verify_job(ck)

    def test_no_spectrum_means_informational_only(self):
        rng = np.random.default_rng(3)
        report = verify_heights(rng.normal(size=(64, 64)))
        assert report.passed  # nothing gated -> nothing failed
        assert report.spectrum is None
        assert all(m.passed is None for m in report.metrics)


# ---------------------------------------------------------------------------
# CLI: `repro verify` + `repro job run --verify`
# ---------------------------------------------------------------------------
class TestCli:
    BASE = ["--spectrum", "self-affine", "--h", "1.0", "--hurst", "0.8",
            "--qr", "0.4", "--n", "256", "--domain", "256", "--seed", "5",
            "--tile", "128"]

    def test_verify_store_target(self, tmp_path, capsys, big_store):
        rc = main(["verify", str(big_store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify: PASS" in out
        assert "hurst_fit" in out

    def test_verify_json_output(self, tmp_path, capsys, big_store):
        out_path = tmp_path / "report.json"
        rc = main(["verify", str(big_store), "--json",
                   "--output", str(out_path)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == VERIFY_SCHEMA
        assert load_report(out_path).passed

    def test_job_run_verify_checkpoints_report(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        rc = main(["job", "run", "--checkpoint", str(ck),
                   "--store", str(tmp_path / "s"), "--verify"] + self.BASE)
        assert rc == 0
        assert "verify: PASS" in capsys.readouterr().out
        report = load_report(ck / REPORT_NAME)
        assert report.passed
        assert report.spectrum["kind"] == "self_affine"

    def test_verify_job_checkpoint_target(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert main(["job", "run", "--checkpoint", str(ck),
                     "--store", str(tmp_path / "s")] + self.BASE) == 0
        capsys.readouterr()
        rc = main(["verify", str(ck)])
        assert rc == 0
        assert "verify: PASS" in capsys.readouterr().out
        assert load_report(ck / REPORT_NAME).passed

    def test_verify_spec_override_can_fail(self, tmp_path, capsys,
                                           big_store):
        """Gating the surface against a *wrong* spectrum goes red and
        exits non-zero — the loop actually closes."""
        spec = tmp_path / "wrong.json"
        spec.write_text(json.dumps({
            "schema": "repro.spec/v1",
            "generator": {
                "kind": "convolution",
                "spectrum": {"kind": "self_affine", "sigma": 5.0,
                             "hurst": 0.3, "qr": 0.4},
                "grid": {"nx": N_BIG, "ny": N_BIG,
                         "lx": float(N_BIG), "ly": float(N_BIG)},
                "truncation": 0.9999,
                "engine": "auto",
                "dtype": "float64",
            },
            "seed": SEED_BIG,
        }))
        rc = main(["verify", str(big_store), "--spec", str(spec)])
        assert rc == 1
        assert "verify: FAIL" in capsys.readouterr().out

    def test_verify_missing_target(self, tmp_path):
        with pytest.raises(SystemExit, match="no manifest.json"):
            main(["verify", str(tmp_path / "nothing")])
