"""Tests for the discrete ray tracer (paper refs [11]-[12])."""

import numpy as np
import pytest

from repro.core.oned import Gaussian1D, ProfileGenerator
from repro.propagation.raytrace import (
    communication_distance,
    path_gain_db,
    trace_rays,
)


@pytest.fixture
def flat():
    x = np.linspace(0.0, 1000.0, 1001)
    return x, np.zeros_like(x)


@pytest.fixture
def hill():
    x = np.linspace(0.0, 1000.0, 1001)
    z = 30.0 * np.exp(-(((x - 500.0) / 40.0) ** 2))
    return x, z


class TestTraceRays:
    def test_free_space_direct_only(self, flat):
        # high antennas, few bounces allowed: the direct ray dominates
        x, z = flat
        res = trace_rays(x, z, (100.0, 200.0), (900.0, 200.0), 300e6,
                         n_rays=181, max_bounces=1)
        assert not res.direct_blocked
        d = 800.0
        assert abs(res.field) * np.sqrt(d) == pytest.approx(1.0, abs=0.6)

    def test_two_ray_interference_flat_ground(self, flat):
        x, z = flat
        res = trace_rays(x, z, (100.0, 10.0), (900.0, 10.0), 300e6,
                         n_rays=2001, max_bounces=2)
        assert res.n_captured >= 2  # direct + ground bounce
        # interference: gain differs from the direct-only value
        gain = path_gain_db(res, 800.0)
        assert -30.0 < gain < 7.0

    def test_hill_blocks_direct(self, hill):
        x, z = hill
        res = trace_rays(x, z, (100.0, 5.0), (900.0, 5.0), 300e6,
                         n_rays=501, max_bounces=2)
        assert res.direct_blocked
        # ray tracing has no diffraction: deep shadow
        assert path_gain_db(res, 800.0) < -60.0

    def test_direct_clears_above_hill(self, hill):
        x, z = hill
        res = trace_rays(x, z, (100.0, 50.0), (900.0, 50.0), 300e6,
                         n_rays=181, max_bounces=1)
        assert not res.direct_blocked

    def test_reflection_coefficient_scales_bounce(self, flat):
        x, z = flat
        kw = dict(n_rays=2001, max_bounces=2, frequency_hz=300e6)
        full = trace_rays(x, z, (100.0, 10.0), (900.0, 10.0),
                          reflection_coefficient=-1.0, **kw)
        weak = trace_rays(x, z, (100.0, 10.0), (900.0, 10.0),
                          reflection_coefficient=-0.1, **kw)
        # with a weak reflection the field is closer to the direct ray
        d = 800.0
        assert abs(abs(weak.field) * np.sqrt(d) - 1.0) < \
            abs(abs(full.field) * np.sqrt(d) - 1.0) + 0.2

    def test_roughness_attenuates_bounce(self, flat):
        x, z = flat
        kw = dict(n_rays=2001, max_bounces=2, frequency_hz=300e6)
        smooth = trace_rays(x, z, (100.0, 10.0), (900.0, 10.0),
                            roughness_std=0.0, **kw)
        rough = trace_rays(x, z, (100.0, 10.0), (900.0, 10.0),
                           roughness_std=10.0, **kw)
        d = 800.0
        # rough ground kills the bounce: field -> direct ray only
        assert abs(abs(rough.field) * np.sqrt(d) - 1.0) < 0.25
        assert abs(smooth.field) != pytest.approx(abs(rough.field), rel=1e-3)

    def test_validation(self, flat):
        x, z = flat
        with pytest.raises(ValueError):
            trace_rays(x[:1], z[:1], (0, 1), (1, 1), 300e6)
        with pytest.raises(ValueError):
            trace_rays(x[::-1], z, (0, 1), (1, 1), 300e6)
        with pytest.raises(ValueError):
            trace_rays(x, z, (0, 1), (1, 1), 300e6, capture_radius=0.0)


class TestPathGain:
    def test_reference_value(self):
        from repro.propagation.raytrace import RayTraceResult

        res = RayTraceResult(field=1.0 / np.sqrt(500.0) + 0j, n_captured=1,
                             n_launched=1, direct_blocked=False)
        assert path_gain_db(res, 500.0) == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        from repro.propagation.raytrace import RayTraceResult

        res = RayTraceResult(field=0j, n_captured=0, n_launched=1,
                             direct_blocked=True)
        with pytest.raises(ValueError):
            path_gain_db(res, 0.0)


class TestCommunicationDistance:
    def test_flat_reaches_far(self, flat):
        x, z = flat
        d = communication_distance(x, z, 300e6, tx_height=5.0, rx_height=2.0,
                                   step=100.0, n_rays=361, max_bounces=1)
        assert d >= 800.0

    def test_rough_shortens_distance(self):
        # the qualitative result of paper ref [12]: rougher surface,
        # shorter communication distance
        x = np.linspace(0.0, 2000.0, 2001)
        gen = ProfileGenerator(Gaussian1D(h=4.0, cl=30.0), 4096, 4096.0)
        z_rough = gen.generate(seed=6)[:2001]
        d_flat = communication_distance(
            x, np.zeros_like(x), 300e6, tx_height=4.0, rx_height=2.0,
            step=100.0, n_rays=361, max_bounces=1,
        )
        d_rough = communication_distance(
            x, z_rough, 300e6, tx_height=4.0, rx_height=2.0,
            step=100.0, n_rays=361, max_bounces=1,
        )
        assert d_rough < d_flat
