"""Tests for the propagation substrate (profiles, diffraction, two-ray,
Hata, link budgets)."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.surface import Surface
from repro.propagation.deygout import deygout_loss_db, principal_edge
from repro.propagation.fresnel import (
    diffraction_parameter,
    free_space_loss_db,
    fresnel_radius,
    knife_edge_loss_db,
    wavelength,
)
from repro.propagation.hata import hata_loss_db
from repro.propagation.link import evaluate_link, max_range
from repro.propagation.profile import PathProfile, bilinear_sample, extract_profile
from repro.propagation.tworay import (
    rayleigh_criterion_height,
    rayleigh_roughness_factor,
    two_ray_field_factor,
    two_ray_loss_db,
)


@pytest.fixture
def flat_surface():
    grid = Grid2D(nx=128, ny=32, lx=2048.0, ly=512.0)
    return Surface(heights=np.zeros(grid.shape), grid=grid)


@pytest.fixture
def hill_surface():
    # a 30 m ridge across the middle of an otherwise flat strip
    grid = Grid2D(nx=128, ny=32, lx=2048.0, ly=512.0)
    h = np.zeros(grid.shape)
    X, _ = grid.meshgrid()
    h += 30.0 * np.exp(-(((X - 1024.0) / 80.0) ** 2))
    return Surface(heights=h, grid=grid)


class TestFresnel:
    def test_wavelength(self):
        assert wavelength(300e6) == pytest.approx(0.999, rel=1e-3)
        with pytest.raises(ValueError):
            wavelength(0.0)

    def test_free_space_loss_slope(self):
        # +20 dB per decade of distance
        l1 = free_space_loss_db(np.array(100.0), 1e9)
        l2 = free_space_loss_db(np.array(1000.0), 1e9)
        assert l2 - l1 == pytest.approx(20.0)

    def test_free_space_loss_reference_value(self):
        # classic: 1 km @ 1 GHz ~ 92.4 dB
        assert free_space_loss_db(np.array(1000.0), 1e9) == pytest.approx(
            92.44, abs=0.1
        )

    def test_fresnel_radius_peak_at_midpath(self):
        f = 1e9
        r_mid = fresnel_radius(500.0, 500.0, f)
        r_edge = fresnel_radius(100.0, 900.0, f)
        assert r_mid > r_edge
        with pytest.raises(ValueError):
            fresnel_radius(1.0, 1.0, f, zone=0)

    def test_diffraction_parameter_sign(self):
        f = 1e9
        nu_block = diffraction_parameter(10.0, 500.0, 500.0, f)
        nu_clear = diffraction_parameter(-10.0, 500.0, 500.0, f)
        assert nu_block > 0 > nu_clear

    def test_knife_edge_loss_grazing(self):
        # nu = 0 (edge exactly on the ray): ~6 dB
        assert knife_edge_loss_db(np.array(0.0)) == pytest.approx(6.0, abs=1.0)

    def test_knife_edge_loss_clear_path(self):
        assert knife_edge_loss_db(np.array(-2.0)) == 0.0

    def test_knife_edge_loss_monotone(self):
        nu = np.linspace(-0.5, 5.0, 50)
        loss = knife_edge_loss_db(nu)
        assert np.all(np.diff(loss) >= -1e-9)


class TestProfile:
    def test_bilinear_exact_on_nodes(self, hill_surface):
        v = bilinear_sample(hill_surface, np.array([1024.0]), np.array([256.0]))
        ix = int(1024.0 / hill_surface.grid.dx)
        iy = int(256.0 / hill_surface.grid.dy)
        assert v[0] == pytest.approx(hill_surface.heights[ix, iy])

    def test_bilinear_out_of_range(self, flat_surface):
        with pytest.raises(ValueError):
            bilinear_sample(flat_surface, np.array([-5.0]), np.array([0.0]))

    def test_extract_profile_basics(self, hill_surface):
        p = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=2.0, n_samples=181)
        assert p.length == pytest.approx(1800.0)
        assert p.ground.max() == pytest.approx(30.0, abs=2.0)
        assert not p.is_line_of_sight()

    def test_flat_profile_is_los(self, flat_surface):
        p = extract_profile(flat_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=5.0, rx_height=5.0)
        assert p.is_line_of_sight()
        assert np.allclose(p.clearance(), 5.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            PathProfile(distances=np.array([0.0, 1.0]),
                        ground=np.array([0.0, 0.0]),
                        tx_height=0.0, rx_height=1.0)
        with pytest.raises(ValueError):
            PathProfile(distances=np.array([0.0, 0.0]),
                        ground=np.array([0.0, 0.0]),
                        tx_height=1.0, rx_height=1.0)

    def test_extract_validation(self, flat_surface):
        with pytest.raises(ValueError):
            extract_profile(flat_surface, (0.0, 0.0), (0.0, 0.0),
                            tx_height=1.0, rx_height=1.0)
        with pytest.raises(ValueError):
            extract_profile(flat_surface, (0.0, 0.0), (10.0, 0.0),
                            tx_height=1.0, rx_height=1.0, n_samples=1)
        with pytest.raises(TypeError, match="tx_height"):
            extract_profile(flat_surface, (0.0, 0.0), (10.0, 0.0))

    def test_extract_legacy_positional_warns(self, flat_surface):
        with pytest.warns(DeprecationWarning, match="tx_height, rx_height"):
            p = extract_profile(flat_surface, (100.0, 256.0),
                                (1900.0, 256.0), 5.0, 5.0)
        assert p.tx_height == 5.0 and p.rx_height == 5.0

    def test_extract_preserves_provenance(self, hill_surface):
        hill_surface.provenance["seed"] = 42
        p = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=2.0)
        assert p.provenance["seed"] == 42
        assert p.provenance["path"]["start"] == [100.0, 256.0]
        assert p.provenance["path"]["n_samples"] == 256

    def test_extract_from_heightfield(self, hill_surface):
        # a unified-API generator result: HeightField + explicit grid
        from repro.core.api import HeightField

        field = HeightField.wrap(hill_surface.heights,
                                 {"method": "convolution", "seed": 9})
        p = extract_profile(field, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=2.0,
                            grid=hill_surface.grid)
        ref = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                              tx_height=10.0, rx_height=2.0)
        assert p.ground == pytest.approx(ref.ground)
        assert p.provenance["seed"] == 9

    def test_heightfield_without_grid_rejected(self, hill_surface):
        with pytest.raises(ValueError, match="grid"):
            extract_profile(np.asarray(hill_surface.heights),
                            (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=2.0)


class TestDeygout:
    def test_clear_path_no_loss(self, flat_surface):
        p = extract_profile(flat_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=10.0)
        res = deygout_loss_db(p, 1e9)
        assert res.loss_db == pytest.approx(0.0, abs=1.5)
        assert res.line_of_sight

    def test_ridge_produces_loss(self, hill_surface):
        p = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=10.0, n_samples=256)
        res = deygout_loss_db(p, 1e9)
        assert res.loss_db > 10.0
        assert not res.line_of_sight
        assert len(res.edges) >= 1

    def test_principal_edge_near_ridge(self, hill_surface):
        p = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=10.0, n_samples=361)
        idx, nu = principal_edge(p, 1e9)
        assert nu > 0
        # edge located near mid path (the ridge)
        assert abs(p.distances[idx] - 900.0) < 150.0

    def test_higher_frequency_more_loss_at_principal_edge(self, hill_surface):
        # single blocking edge: nu ~ sqrt(f), J monotone in nu.  (The full
        # multi-edge sum is NOT monotone in f because grazing sub-edges
        # with nu in (-0.78, 0) drop out at high frequency.)
        p = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=10.0, n_samples=256)
        l_low = deygout_loss_db(p, 300e6, max_edges=1).loss_db
        l_high = deygout_loss_db(p, 3e9, max_edges=1).loss_db
        assert l_high > l_low

    def test_edge_budget_limits_recursion(self, hill_surface):
        p = extract_profile(hill_surface, (100.0, 256.0), (1900.0, 256.0),
                            tx_height=10.0, rx_height=10.0, n_samples=256)
        res1 = deygout_loss_db(p, 1e9, max_edges=1)
        res3 = deygout_loss_db(p, 1e9, max_edges=3)
        assert len(res1.edges) <= 1
        assert res3.loss_db >= res1.loss_db - 1e-9


class TestTwoRay:
    def test_roughness_factor_limits(self):
        assert rayleigh_roughness_factor(0.0, 0.1, 1e9) == pytest.approx(1.0)
        assert rayleigh_roughness_factor(100.0, 0.5, 1e9) < 1e-6

    def test_roughness_factor_monotone_in_h(self):
        hs = np.linspace(0.0, 2.0, 10)
        vals = [rayleigh_roughness_factor(h, 0.05, 1e9) for h in hs]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_rayleigh_criterion(self):
        h = rayleigh_criterion_height(0.1, 1e9)
        assert h == pytest.approx(wavelength(1e9) / (8 * np.sin(0.1)))
        with pytest.raises(ValueError):
            rayleigh_criterion_height(0.0, 1e9)

    def test_smooth_ground_interference_pattern(self):
        d = np.linspace(50.0, 5000.0, 2000)
        fac = two_ray_field_factor(d, 10.0, 2.0, 1e9, height_std=0.0)
        # oscillates between ~0 and ~2 near-in
        assert fac.max() > 1.5
        assert fac.min() < 0.5

    def test_rough_ground_suppresses_interference(self):
        # h large enough that k h sin(theta) >> 1 over the whole range
        # (the Rayleigh factor recovers at long range as grazing angles
        # shrink, so the roughness must dominate the chosen range)
        d = np.linspace(500.0, 2000.0, 500)
        smooth = two_ray_field_factor(d, 10.0, 2.0, 1e9, height_std=0.0)
        rough = two_ray_field_factor(d, 10.0, 2.0, 1e9, height_std=20.0)
        # rough: reflected ray killed -> factor ~ 1 (free space)
        assert np.all(np.abs(rough - 1.0) < 0.3)
        assert smooth.std() > rough.std()

    def test_two_ray_loss_asymptote(self):
        # far field: 40 dB/decade (d^4 law) for smooth ground
        l1 = two_ray_loss_db(np.array(20_000.0), 10.0, 2.0, 1e9)
        l2 = two_ray_loss_db(np.array(200_000.0), 10.0, 2.0, 1e9)
        assert l2 - l1 == pytest.approx(40.0, abs=3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_ray_field_factor(np.array(-1.0), 10.0, 2.0, 1e9)
        with pytest.raises(ValueError):
            two_ray_field_factor(np.array(10.0), 0.0, 2.0, 1e9)
        with pytest.raises(ValueError):
            rayleigh_roughness_factor(-1.0, 0.1, 1e9)


class TestHata:
    def test_urban_reference_magnitude(self):
        # 900 MHz, hb=30, hm=1.5, d=1 km: ~126 dB urban median loss
        loss = hata_loss_db(np.array(1.0), 900.0, 30.0, 1.5, "urban")
        assert 120.0 < float(loss) < 132.0

    def test_environment_ordering(self):
        d = np.array(5.0)
        urban = hata_loss_db(d, 900.0, environment="urban", mobile_height_m=1.5)
        suburban = hata_loss_db(d, 900.0, environment="suburban", mobile_height_m=1.5)
        open_ = hata_loss_db(d, 900.0, environment="open", mobile_height_m=1.5)
        assert float(urban) > float(suburban) > float(open_)

    def test_distance_slope(self):
        l1 = hata_loss_db(np.array(2.0), 900.0)
        l2 = hata_loss_db(np.array(20.0), 900.0)
        slope = float(l2 - l1)  # per decade
        assert slope == pytest.approx(44.9 - 6.55 * np.log10(30.0), abs=0.1)

    def test_validity_enforcement(self):
        with pytest.raises(ValueError):
            hata_loss_db(np.array(1.0), 100.0)  # f too low
        with pytest.raises(ValueError):
            hata_loss_db(np.array(50.0), 900.0)  # too far
        # escape hatch
        out = hata_loss_db(np.array(50.0), 900.0, strict=False)
        assert np.isfinite(out)

    def test_large_city_correction(self):
        a = hata_loss_db(np.array(5.0), 900.0, large_city=False)
        b = hata_loss_db(np.array(5.0), 900.0, large_city=True)
        assert float(a) != pytest.approx(float(b), abs=1e-6)

    def test_environment_validation(self):
        with pytest.raises(ValueError):
            hata_loss_db(np.array(1.0), 900.0, environment="alpine")


class TestLinkBudget:
    def test_flat_vs_hill(self, flat_surface, hill_surface):
        kw = dict(frequency_hz=1e9, tx_height=10.0, rx_height=5.0)
        flat = evaluate_link(flat_surface, (100.0, 256.0), (1900.0, 256.0), **kw)
        hill = evaluate_link(hill_surface, (100.0, 256.0), (1900.0, 256.0), **kw)
        assert hill.total_db > flat.total_db + 5.0
        assert flat.line_of_sight and not hill.line_of_sight

    def test_budget_itemisation(self, flat_surface):
        b = evaluate_link(flat_surface, (100.0, 256.0), (1900.0, 256.0), 1e9)
        assert b.total_db == pytest.approx(
            b.free_space_db + b.diffraction_db - b.two_ray_gain_db
        )
        assert set(b.as_dict()) >= {"distance", "total_db", "line_of_sight"}

    def test_max_range_monotone_in_budget(self, hill_surface):
        kw = dict(frequency_hz=1e9, step=100.0)
        short = max_range(hill_surface, (100.0, 256.0), (1.0, 0.0),
                          max_loss_db=95.0, **kw)
        generous = max_range(hill_surface, (100.0, 256.0), (1.0, 0.0),
                             max_loss_db=160.0, **kw)
        assert generous >= short

    def test_max_range_validation(self, flat_surface):
        with pytest.raises(ValueError):
            max_range(flat_surface, (0.0, 0.0), (0.0, 0.0), 1e9, 100.0)
