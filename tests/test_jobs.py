"""Tests for the fault-tolerant checkpoint/resume job layer (repro.jobs).

Covers the retry policy, deterministic fault injection, the resilient
executor (retries, worker-crash respawn, backend degradation), the
``repro.jobs/v1`` checkpoint format, and — the headline contract —
resume-to-bit-identical-heights for both tiled and strip jobs across all
execution backends.
"""

import json

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.jobs import (
    FailureBudgetExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    JobCheckpoint,
    PoolRespawnLimit,
    RetryPolicy,
    TileFailedError,
    generator_fingerprint,
    resume,
    run_strips,
    run_tiled,
    status,
    strip_plan,
)
from repro.parallel import (
    TilePlan,
    assemble_strips,
    generate_tiled,
    stream_strips,
)

N = 96
TILE = 48

FAST = RetryPolicy(backoff_base=0.0)


def _gen():
    return ConvolutionGenerator(
        GaussianSpectrum(h=1.0, clx=10.0, cly=10.0),
        Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)),
    )


@pytest.fixture(scope="module")
def gen():
    return _gen()


@pytest.fixture(scope="module")
def noise():
    return BlockNoise(seed=11)


@pytest.fixture(scope="module")
def plan():
    return TilePlan(total_nx=N, total_ny=N, tile_nx=TILE, tile_ny=TILE)


@pytest.fixture(scope="module")
def reference(gen, noise, plan):
    """The uninterrupted serial run every resilient run must reproduce."""
    return generate_tiled(gen, noise, plan, backend="serial").heights


class TestRetryPolicy:
    def test_delay_schedule(self):
        p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                        backoff_max=0.35)
        assert p.delay(0) == 0.0
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.35)  # capped
        assert p.delay(10) == pytest.approx(0.35)

    def test_round_trip(self):
        p = RetryPolicy(max_attempts=5, failure_budget=7, degrade=False)
        assert RetryPolicy.from_dict(p.to_dict()) == p

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_factor": 0.5},
        {"failure_budget": -1},
        {"max_respawns": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_parse(self):
        fp = FaultPlan.parse([
            "tile=3,attempt=2,kind=kill",
            "tile=0,kind=delay,delay=0.25",
            "tile=1",
        ])
        assert fp.lookup(3, 2) == FaultSpec(tile=3, attempt=2, kind="kill")
        assert fp.lookup(0, 1).delay_s == 0.25
        assert fp.lookup(1, 1).kind == "raise"
        assert fp.lookup(1, 2) is None

    @pytest.mark.parametrize("text", [
        "attempt=1",          # missing tile
        "tile=1,shape=oval",  # unknown key
        "tile",               # not key=value
        "tile=1,kind=melt",   # unknown kind
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse([text])

    def test_fire_raise(self):
        fp = FaultPlan.of(FaultSpec(tile=2))
        fp.fire(0, 1)  # not scheduled: no-op
        with pytest.raises(InjectedFault):
            fp.fire(2, 1)

    def test_kill_inert_in_parent(self):
        # In the parent process a kill fault must be a no-op — the test
        # process surviving this call is the assertion.
        FaultPlan.of(FaultSpec(tile=0, kind="kill")).fire(0, 1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(tile=-1)
        with pytest.raises(ValueError):
            FaultSpec(tile=0, attempt=0)


@pytest.mark.faults
class TestResilientExecutor:
    def test_serial_retry_recovers(self, gen, noise, plan, reference):
        fp = FaultPlan.of(FaultSpec(tile=1, attempt=1))
        out = generate_tiled(gen, noise, plan, backend="serial",
                             retry=FAST, fault_plan=fp)
        assert np.array_equal(out.heights, reference)
        assert out.provenance["resilience"]["retries"] == 1

    def test_thread_retry_recovers(self, gen, noise, plan, reference):
        fp = FaultPlan.of(FaultSpec(tile=0, attempt=1),
                          FaultSpec(tile=3, attempt=1))
        out = generate_tiled(gen, noise, plan, backend="thread", workers=2,
                             retry=FAST, fault_plan=fp)
        assert np.array_equal(out.heights, reference)
        assert out.provenance["resilience"]["retries"] == 2

    def test_max_attempts_exhausted(self, gen, noise, plan):
        fp = FaultPlan.of(*(FaultSpec(tile=2, attempt=a)
                            for a in (1, 2, 3)))
        with pytest.raises(TileFailedError) as exc:
            generate_tiled(gen, noise, plan, backend="serial",
                           retry=FAST, fault_plan=fp)
        assert exc.value.index == 2
        assert exc.value.failures == 3

    def test_failure_budget(self, gen, noise, plan):
        fp = FaultPlan.of(FaultSpec(tile=0, attempt=1),
                          FaultSpec(tile=1, attempt=1),
                          FaultSpec(tile=2, attempt=1))
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0,
                             failure_budget=2)
        with pytest.raises(FailureBudgetExceeded):
            generate_tiled(gen, noise, plan, backend="serial",
                           retry=policy, fault_plan=fp)

    def test_process_kill_respawns_bit_identical(self, gen, noise, plan,
                                                 reference):
        fp = FaultPlan.of(FaultSpec(tile=1, attempt=1, kind="kill"))
        out = generate_tiled(gen, noise, plan, backend="process", workers=2,
                             retry=FAST, fault_plan=fp)
        assert np.array_equal(out.heights, reference)
        res = out.provenance["resilience"]
        assert res["respawns"] >= 1
        assert res["degraded_to"] is None

    def test_process_degrades_to_thread(self, gen, noise, plan, reference):
        # Kill tile 1 on every attempt: the pool breaks until the respawn
        # budget is spent, then the run degrades to the thread backend
        # where kill faults are inert — and the values are unchanged.
        fp = FaultPlan.of(*(FaultSpec(tile=1, attempt=a, kind="kill")
                            for a in range(1, 8)))
        policy = RetryPolicy(backoff_base=0.0, max_respawns=1)
        out = generate_tiled(gen, noise, plan, backend="process", workers=2,
                             retry=policy, fault_plan=fp)
        assert np.array_equal(out.heights, reference)
        res = out.provenance["resilience"]
        assert res["degraded_to"] == "thread"
        assert res["respawns"] == 2

    def test_no_degrade_raises(self, gen, noise, plan):
        fp = FaultPlan.of(*(FaultSpec(tile=1, attempt=a, kind="kill")
                            for a in range(1, 8)))
        policy = RetryPolicy(backoff_base=0.0, max_respawns=0,
                             degrade=False)
        with pytest.raises(PoolRespawnLimit):
            generate_tiled(gen, noise, plan, backend="process", workers=2,
                           retry=policy, fault_plan=fp)

    def test_skip_preserves_out(self, gen, noise, plan, reference):
        # Skipped tiles must keep whatever ``out`` already holds — the
        # resume contract.
        out = np.full((N, N), 7.25)
        surface = generate_tiled(gen, noise, plan, backend="serial",
                                 out=out, skip=[0])
        tile0 = plan.tiles()[0]
        assert np.all(
            surface.heights[:tile0.nx, :tile0.ny] == 7.25
        )
        assert np.array_equal(surface.heights[TILE:], reference[TILE:])
        assert surface.provenance["resilience"]["tiles_skipped"] == 1

    def test_skip_rejects_bad_index(self, gen, noise, plan):
        with pytest.raises(ValueError):
            generate_tiled(gen, noise, plan, backend="serial", skip=[99])

    def test_on_tile_ordering(self, gen, noise, plan):
        seen = []
        generate_tiled(gen, noise, plan, backend="serial",
                       on_tile=lambda idx, tile: seen.append(idx))
        assert seen == [0, 1, 2, 3]

    def test_out_validation(self, gen, noise, plan):
        with pytest.raises(ValueError):
            generate_tiled(gen, noise, plan,
                           out=np.zeros((N, N), dtype=np.float32),
                           skip=[])
        with pytest.raises(ValueError):
            generate_tiled(gen, noise, plan, out=np.zeros((N, N + 1)))


class TestCheckpoint:
    def test_create_load_round_trip(self, tmp_path, gen, noise, plan):
        ckpt = JobCheckpoint.create(
            tmp_path / "job", kind="tiled", plan=plan, noise=noise,
            backend="serial", workers=None, retry=FAST, generator=gen,
        )
        ckpt.heights[:TILE, :TILE] = 3.5
        ckpt.mark_done(0)
        ckpt.write()
        loaded = JobCheckpoint.load(tmp_path / "job")
        assert loaded.done_indices() == [0]
        assert np.all(loaded.heights[:TILE, :TILE] == 3.5)
        assert loaded.retry == FAST
        assert loaded.noise.seed == noise.seed
        assert loaded.plan.tiles() == plan.tiles()
        assert loaded.status == "running"

    def test_create_refuses_existing(self, tmp_path, gen, noise, plan):
        kwargs = dict(kind="tiled", plan=plan, noise=noise,
                      backend="serial", workers=None, retry=None,
                      generator=gen)
        JobCheckpoint.create(tmp_path / "job", **kwargs)
        with pytest.raises(FileExistsError):
            JobCheckpoint.create(tmp_path / "job", **kwargs)

    def test_load_rejects_foreign_format(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": "somebody-else/v9"})
        )
        with pytest.raises(ValueError, match="format"):
            JobCheckpoint.load(tmp_path)

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            JobCheckpoint.load(tmp_path / "nowhere")

    def test_fingerprint_stability(self, gen):
        assert generator_fingerprint(gen) == generator_fingerprint(_gen())
        other = ConvolutionGenerator(
            GaussianSpectrum(h=2.0, clx=10.0, cly=10.0),
            Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)),
        )
        assert generator_fingerprint(gen) != generator_fingerprint(other)


@pytest.mark.faults
class TestResumeDeterminism:
    def _interrupt(self, tmp_path, gen, noise, plan, **kwargs):
        """Start a job that dies after two tiles; return its checkpoint."""
        fp = FaultPlan.of(*(FaultSpec(tile=2, attempt=a)
                            for a in range(1, 4)))
        path = tmp_path / "job"
        with pytest.raises(TileFailedError):
            run_tiled(gen, noise, plan, checkpoint=path, retry=FAST,
                      fault_plan=fp, **kwargs)
        assert status(path)["status"] == "failed"
        assert 0 < status(path)["tiles_done"] < len(plan)
        return path

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_kill_resume_bit_identical(self, tmp_path, gen, noise, plan,
                                       reference, backend):
        path = self._interrupt(tmp_path, gen, noise, plan)
        surface = resume(path, gen, backend=backend)
        assert np.array_equal(surface.heights, reference)
        job = surface.provenance["job"]
        assert job["resumed"] is True
        assert job["tiles_resumed"] == 2
        assert status(path)["status"] == "complete"

    def test_worker_death_then_resume(self, tmp_path, gen, noise, plan,
                                      reference):
        # Interrupt a *process* run via worker kills that exhaust the
        # respawn budget with degradation off, then resume on a fresh
        # process pool.
        fp = FaultPlan.of(*(FaultSpec(tile=1, attempt=a, kind="kill")
                            for a in range(1, 8)))
        policy = RetryPolicy(backoff_base=0.0, max_respawns=0,
                             degrade=False)
        path = tmp_path / "job"
        with pytest.raises(PoolRespawnLimit):
            run_tiled(gen, noise, plan, checkpoint=path,
                      backend="process", workers=2,
                      retry=policy, fault_plan=fp)
        st = status(path)
        assert st["status"] == "failed"
        surface = resume(path, gen, backend="process", retry=FAST)
        assert np.array_equal(surface.heights, reference)

    def test_resume_completed_job(self, tmp_path, gen, noise, plan,
                                  reference):
        path = tmp_path / "job"
        run_tiled(gen, noise, plan, checkpoint=path)
        surface = resume(path, gen)
        assert np.array_equal(surface.heights, reference)
        assert surface.provenance["job"]["tiles_resumed"] == len(plan)

    def test_checkpoint_every(self, tmp_path, gen, noise, plan, reference):
        path = self._interrupt(tmp_path, gen, noise, plan,
                               checkpoint_every=2)
        surface = resume(path, gen, checkpoint_every=2)
        assert np.array_equal(surface.heights, reference)

    def test_resume_rejects_wrong_generator(self, tmp_path, gen, noise,
                                            plan):
        path = self._interrupt(tmp_path, gen, noise, plan)
        other = ConvolutionGenerator(
            GaussianSpectrum(h=2.0, clx=10.0, cly=10.0),
            Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)),
        )
        with pytest.raises(ValueError, match="fingerprint"):
            resume(path, other)

    def test_resume_from_rebuild_recipe(self, tmp_path, gen, noise, plan,
                                        reference):
        fp = FaultPlan.of(*(FaultSpec(tile=2, attempt=a)
                            for a in range(1, 4)))
        path = tmp_path / "job"
        rebuild = {
            "kind": "convolution",
            "spectrum": gen.spectrum.to_dict(),
            "grid": {"nx": N, "ny": N, "lx": float(N), "ly": float(N)},
            "engine": gen.engine,
        }
        with pytest.raises(TileFailedError):
            run_tiled(gen, noise, plan, checkpoint=path, retry=FAST,
                      fault_plan=fp, rebuild=rebuild)
        surface = resume(path)  # generator reconstructed from the manifest
        assert np.array_equal(surface.heights, reference)

    def test_resume_without_recipe_needs_generator(self, tmp_path, gen,
                                                   noise, plan):
        path = self._interrupt(tmp_path, gen, noise, plan)
        with pytest.raises(ValueError, match="rebuild"):
            resume(path)

    def test_float32_job_resumes_bit_identical(self, tmp_path, noise,
                                               plan):
        # regression: the checkpoint must allocate (and reload) its live
        # array in the generator's precision, or the executor rejects it
        # as an out= target and a float32 job can neither run nor resume
        g32 = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=10.0, cly=10.0),
            Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)),
            dtype="float32",
        )
        reference32 = generate_tiled(g32, noise, plan,
                                     backend="serial").heights
        assert reference32.dtype == np.float32
        path = self._interrupt(tmp_path, g32, noise, plan)
        surface = resume(path, g32)
        assert surface.heights.dtype == np.float32
        assert np.array_equal(surface.heights, reference32)

    def test_fingerprint_distinguishes_precision(self, gen):
        g32 = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=10.0, cly=10.0),
            Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)),
            dtype="float32",
        )
        # a float32 checkpoint must refuse a float64 generator (and vice
        # versa); the default precision keeps the pre-dtype digest
        assert generator_fingerprint(gen) != generator_fingerprint(g32)


@pytest.mark.faults
class TestStripJobs:
    STRIP = 40  # does not divide N: exercises the clipped final strip

    def test_matches_stream_strips(self, tmp_path, gen, noise):
        streamed = assemble_strips(
            stream_strips(gen, noise, N, TILE, self.STRIP)
        )
        surface = run_strips(gen, noise, N, TILE, self.STRIP,
                             checkpoint=tmp_path / "job")
        assert np.array_equal(surface.heights, streamed.heights)
        assert surface.provenance["strips"] == len(
            strip_plan(N, TILE, self.STRIP)
        )

    def test_strip_resume_bit_identical(self, tmp_path, gen, noise):
        streamed = assemble_strips(
            stream_strips(gen, noise, N, TILE, self.STRIP)
        )
        fp = FaultPlan.of(*(FaultSpec(tile=1, attempt=a)
                            for a in range(1, 4)))
        path = tmp_path / "job"
        with pytest.raises(TileFailedError):
            run_strips(gen, noise, N, TILE, self.STRIP, checkpoint=path,
                       retry=FAST, fault_plan=fp)
        st = status(path)
        assert st["kind"] == "strips"
        assert st["status"] == "failed"
        surface = resume(path, gen)
        assert np.array_equal(surface.heights, streamed.heights)

    def test_strip_plan_geometry(self):
        plan = strip_plan(100, 64, 48, x0=10, y0=-4)
        tiles = plan.tiles()
        assert [t.nx for t in tiles] == [48, 48, 4]
        assert all(t.ny == 64 for t in tiles)
        assert tiles[0].x0 == 10 and tiles[0].y0 == -4


class TestJobStatus:
    def test_summary_keys(self, tmp_path, gen, noise, plan):
        path = tmp_path / "job"
        run_tiled(gen, noise, plan, checkpoint=path)
        st = status(path)
        assert st["format"] == "repro.jobs/v1"
        assert st["kind"] == "tiled"
        assert st["status"] == "complete"
        assert st["tiles_done"] == st["tiles_total"] == len(plan)
        assert st["fraction_done"] == 1.0
        assert st["generator"]["fingerprint"] == generator_fingerprint(gen)
        assert st["error"] is None
        json.dumps(st)  # must stay JSON-serialisable for the CLI


class TestStreamAccounting:
    """Regression tests for the strip-stream emitted/off-by-one fix."""

    class _Flaky:
        """Windowed generator that fails the first ``fail`` calls."""

        def __init__(self, inner, fail):
            self.inner = inner
            self.grid = inner.grid
            self.engine = inner.engine
            self.remaining = fail

        def generate_window(self, noise, x0, y0, nx, ny, **kwargs):
            if self.remaining > 0:
                self.remaining -= 1
                raise RuntimeError("flaky window")
            return self.inner.generate_window(noise, x0, y0, nx, ny,
                                              **kwargs)

    def test_failed_strip_is_retried_not_skipped(self, gen, noise):
        from repro.parallel import StripStream

        clean = list(StripStream(gen, noise, width_ny=TILE, strip_nx=32,
                                 n_strips=3))
        flaky = self._Flaky(gen, fail=1)
        stream = StripStream(flaky, noise, width_ny=TILE, strip_nx=32,
                             n_strips=3)
        with pytest.raises(RuntimeError):
            next(stream)
        # the failed strip was NOT counted as emitted...
        assert stream.emitted == 0
        assert stream.next_index == 0
        strips = list(stream)
        # ...so the retry re-produces strip 0 and nothing is skipped
        assert len(strips) == 3
        for got, want in zip(strips, clean):
            assert np.array_equal(got.heights, want.heights)
            assert got.origin == want.origin

    def test_start_index_resumes_mid_stream(self, gen, noise):
        from repro.parallel import StripStream

        full = list(StripStream(gen, noise, width_ny=TILE, strip_nx=32,
                                n_strips=4))
        tail = StripStream(gen, noise, width_ny=TILE, strip_nx=32,
                           n_strips=2, start_index=2)
        assert tail.next_index == 2
        strips = list(tail)
        assert tail.emitted == 2
        for got, want in zip(strips, full[2:]):
            assert np.array_equal(got.heights, want.heights)
            assert got.provenance["strip_index"] == \
                want.provenance["strip_index"]

    def test_strip_provenance_records_noise(self, gen, noise):
        strip = next(iter(stream_strips(gen, noise, 32, TILE, 32)))
        prov = strip.provenance
        assert prov["noise_seed"] == noise.seed
        assert prov["noise_block"] == noise.block
        assert prov["window"] == [0, 0, 32, TILE]
        assert prov["strip_index"] == 0
