"""Edge-case and failure-injection tests across modules.

The behaviours here are the ones a downstream user hits when they hold
the API slightly wrong — each test pins the *diagnostic quality* of the
failure (clear exception, not a wrong answer) or the correctness of a
boundary configuration.
"""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator, convolve_full
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.rng import BlockNoise
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.core.weights import build_kernel, truncate_kernel
from repro.fields.parameter_map import LayeredLayout, PlateLattice, RegionSpec
from repro.fields.regions import Circle


class TestDegenerateParameters:
    def test_zero_h_everywhere(self):
        """h = 0 must produce an exactly flat surface end to end."""
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        s = GaussianSpectrum(h=0.0, clx=8.0, cly=8.0)
        gen = ConvolutionGenerator(s, grid, truncation=None)
        assert np.allclose(gen.generate(seed=1), 0.0)
        k = build_kernel(s, grid)
        assert k.energy == 0.0

    def test_tiny_correlation_length(self):
        """cl << dx: the surface degenerates to (almost) white noise."""
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)  # dx = 4
        s = GaussianSpectrum(h=1.0, clx=0.5, cly=0.5)
        f = convolve_full(s, grid, seed=2)
        # neighbouring samples nearly uncorrelated
        c = np.mean(f[:-1, :] * f[1:, :]) / f.var()
        assert abs(c) < 0.1
        # variance heavily reduced: most of the spectrum is beyond Nyquist
        assert f.var() < 0.5

    def test_correlation_length_near_domain(self):
        """cl ~ L: generation still runs; variance collapses towards a
        single correlated patch (documented wrap-around regime)."""
        grid = Grid2D(nx=64, ny=64, lx=64.0, ly=64.0)
        s = GaussianSpectrum(h=1.0, clx=32.0, cly=32.0)
        f = convolve_full(s, grid, seed=3)
        assert np.all(np.isfinite(f))

    def test_single_plate_lattice_is_homogeneous(self):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        s = GaussianSpectrum(h=1.0, clx=8.0, cly=8.0)
        lat = PlateLattice([0.0, 64.0], [0.0, 64.0], [[s]], half_width=10.0)
        wm = lat.weight_map(grid)
        assert wm.n_regions == 1
        assert np.allclose(wm.weights, 1.0)

    def test_three_by_three_lattice_partition(self):
        grid = Grid2D(nx=48, ny=48, lx=96.0, ly=96.0)
        s = [
            [GaussianSpectrum(h=0.5 + 0.1 * (i * 3 + j), clx=6.0, cly=6.0)
             for j in range(3)]
            for i in range(3)
        ]
        lat = PlateLattice([0.0, 32.0, 64.0, 96.0], [0.0, 32.0, 64.0, 96.0],
                           s, half_width=8.0)
        wm = lat.weight_map(grid)
        wm.validate()
        assert wm.n_regions == 9

    def test_overlapping_transitions_wider_than_plate(self):
        """Transition bands wider than the plate still partition unity."""
        grid = Grid2D(nx=64, ny=8, lx=128.0, ly=16.0)
        specs = [[GaussianSpectrum(h=1.0, clx=4.0, cly=4.0)],
                 [GaussianSpectrum(h=2.0, clx=4.0, cly=4.0)],
                 [GaussianSpectrum(h=3.0, clx=4.0, cly=4.0)]]
        lat = PlateLattice([0.0, 42.0, 86.0, 128.0], [0.0, 16.0], specs,
                           half_width=40.0)
        wm = lat.weight_map(grid)
        wm.validate()


class TestKernelBoundaries:
    def test_truncation_to_single_sample(self):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        k = build_kernel(GaussianSpectrum(h=1.0, clx=8.0, cly=8.0), grid)
        t = truncate_kernel(k, 0, 0)
        assert t.shape == (1, 1)
        # a 1x1 kernel scales the noise: variance = centre value squared
        assert t.energy == pytest.approx(float(k.values[k.cx, k.cy] ** 2))

    def test_window_generation_with_1x1_kernel(self):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        gen = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=8.0, cly=8.0), grid, truncation=(0, 0)
        )
        bn = BlockNoise(seed=4)
        w = gen.generate_window(bn, 5, 5, 8, 8)
        noise = bn.window(5, 5, 8, 8)
        assert np.allclose(w, gen.kernel.values[0, 0] * noise)

    def test_asymmetric_truncation(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        s = GaussianSpectrum(h=1.0, clx=6.0, cly=20.0)
        gen = ConvolutionGenerator(s, grid, truncation=(4, 14))
        assert gen.footprint == (9, 29)
        f = gen.generate(seed=5)
        assert np.all(np.isfinite(f))


class TestInhomogeneousEdges:
    def test_kernel_for_unseen_spectrum_falls_back(self):
        """Windows can see spectra the construction-grid map never met."""
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        inner = ExponentialSpectrum(h=0.3, clx=8.0, cly=8.0)
        outer = GaussianSpectrum(h=1.0, clx=8.0, cly=8.0)
        # a patch whose region lies wholly OUTSIDE the construction grid
        lay = LayeredLayout(
            outer,
            [RegionSpec(Circle(1000.0, 1000.0, 100.0), inner,
                        half_width=20.0)],
        )
        gen = InhomogeneousGenerator(lay, grid, truncation=0.999)
        # construction-grid map holds only the background
        assert gen.weight_map.n_regions == 2  # background + (zero) patch
        # a window near the remote patch must still generate fine
        bn = BlockNoise(seed=6)
        w = gen.generate_window(bn, 230, 230, 16, 16)
        assert np.all(np.isfinite(w.heights))
        assert w.height_std() < 3 * inner.h + 1.0  # sane numbers

    def test_weight_map_cached(self):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        lay = LayeredLayout(GaussianSpectrum(h=1.0, clx=6.0, cly=6.0), [])
        gen = InhomogeneousGenerator(lay, grid)
        assert gen.weight_map is gen.weight_map
        assert gen.kernels is gen.kernels

    def test_point_far_outside_grid(self):
        from repro.core.inhomogeneous import PointOrientedLayout, PointSpec

        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        layout = PointOrientedLayout(
            [PointSpec(-500.0, -500.0, GaussianSpectrum(h=1.0, clx=6.0,
                                                        cly=6.0)),
             PointSpec(32.0, 32.0, ExponentialSpectrum(h=2.0, clx=6.0,
                                                       cly=6.0))],
            half_width=10.0,
        )
        wm = layout.weight_map(grid)
        wm.validate()
        # everything on the grid belongs to the near point
        idx = wm.spectra.index(
            ExponentialSpectrum(h=2.0, clx=6.0, cly=6.0)
        )
        assert np.all(wm.weights[idx] == 1.0)


class TestNoiseInjection:
    def test_nan_noise_rejected_by_surface(self):
        grid = Grid2D(nx=16, ny=16, lx=32.0, ly=32.0)
        lay = LayeredLayout(GaussianSpectrum(h=1.0, clx=4.0, cly=4.0), [])
        gen = InhomogeneousGenerator(lay, grid, truncation=(4, 4))
        bad = np.zeros(grid.shape)
        bad[3, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            gen.generate(noise=bad)

    def test_inf_heights_rejected_by_renderers(self):
        from repro.core.surface import Surface

        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0)
        h = np.zeros((8, 8))
        h[0, 0] = np.inf
        with pytest.raises(ValueError):
            Surface(heights=h, grid=grid)
