"""Edge-case and failure-injection tests across modules.

The behaviours here are the ones a downstream user hits when they hold
the API slightly wrong — each test pins the *diagnostic quality* of the
failure (clear exception, not a wrong answer) or the correctness of a
boundary configuration.
"""

import numpy as np
import pytest

from repro.core.convolution import (
    ConvolutionGenerator,
    apply_kernel_valid_fft,
    apply_kernel_valid_spatial,
    convolve_full,
    resolve_kernel,
)
from repro.core.engine import KernelPlanCache
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.core.weights import Kernel, build_kernel, truncate_kernel
from repro.fields.parameter_map import LayeredLayout, PlateLattice, RegionSpec
from repro.fields.regions import Circle
from repro.parallel.executor import generate_tiled
from repro.parallel.tiles import TilePlan


class TestDegenerateParameters:
    def test_zero_h_everywhere(self):
        """h = 0 must produce an exactly flat surface end to end."""
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        s = GaussianSpectrum(h=0.0, clx=8.0, cly=8.0)
        gen = ConvolutionGenerator(s, grid, truncation=None)
        assert np.allclose(gen.generate(seed=1), 0.0)
        k = build_kernel(s, grid)
        assert k.energy == 0.0

    def test_tiny_correlation_length(self):
        """cl << dx: the surface degenerates to (almost) white noise."""
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)  # dx = 4
        s = GaussianSpectrum(h=1.0, clx=0.5, cly=0.5)
        f = convolve_full(s, grid, seed=2)
        # neighbouring samples nearly uncorrelated
        c = np.mean(f[:-1, :] * f[1:, :]) / f.var()
        assert abs(c) < 0.1
        # variance heavily reduced: most of the spectrum is beyond Nyquist
        assert f.var() < 0.5

    def test_correlation_length_near_domain(self):
        """cl ~ L: generation still runs; variance collapses towards a
        single correlated patch (documented wrap-around regime)."""
        grid = Grid2D(nx=64, ny=64, lx=64.0, ly=64.0)
        s = GaussianSpectrum(h=1.0, clx=32.0, cly=32.0)
        f = convolve_full(s, grid, seed=3)
        assert np.all(np.isfinite(f))

    def test_single_plate_lattice_is_homogeneous(self):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        s = GaussianSpectrum(h=1.0, clx=8.0, cly=8.0)
        lat = PlateLattice([0.0, 64.0], [0.0, 64.0], [[s]], half_width=10.0)
        wm = lat.weight_map(grid)
        assert wm.n_regions == 1
        assert np.allclose(wm.weights, 1.0)

    def test_three_by_three_lattice_partition(self):
        grid = Grid2D(nx=48, ny=48, lx=96.0, ly=96.0)
        s = [
            [GaussianSpectrum(h=0.5 + 0.1 * (i * 3 + j), clx=6.0, cly=6.0)
             for j in range(3)]
            for i in range(3)
        ]
        lat = PlateLattice([0.0, 32.0, 64.0, 96.0], [0.0, 32.0, 64.0, 96.0],
                           s, half_width=8.0)
        wm = lat.weight_map(grid)
        wm.validate()
        assert wm.n_regions == 9

    def test_overlapping_transitions_wider_than_plate(self):
        """Transition bands wider than the plate still partition unity."""
        grid = Grid2D(nx=64, ny=8, lx=128.0, ly=16.0)
        specs = [[GaussianSpectrum(h=1.0, clx=4.0, cly=4.0)],
                 [GaussianSpectrum(h=2.0, clx=4.0, cly=4.0)],
                 [GaussianSpectrum(h=3.0, clx=4.0, cly=4.0)]]
        lat = PlateLattice([0.0, 42.0, 86.0, 128.0], [0.0, 16.0], specs,
                           half_width=40.0)
        wm = lat.weight_map(grid)
        wm.validate()


class TestKernelBoundaries:
    def test_truncation_to_single_sample(self):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        k = build_kernel(GaussianSpectrum(h=1.0, clx=8.0, cly=8.0), grid)
        t = truncate_kernel(k, 0, 0)
        assert t.shape == (1, 1)
        # a 1x1 kernel scales the noise: variance = centre value squared
        assert t.energy == pytest.approx(float(k.values[k.cx, k.cy] ** 2))

    def test_window_generation_with_1x1_kernel(self):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        gen = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=8.0, cly=8.0), grid, truncation=(0, 0)
        )
        bn = BlockNoise(seed=4)
        w = gen.generate_window(bn, 5, 5, 8, 8)
        noise = bn.window(5, 5, 8, 8)
        assert np.allclose(w, gen.kernel.values[0, 0] * noise)

    def test_asymmetric_truncation(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        s = GaussianSpectrum(h=1.0, clx=6.0, cly=20.0)
        gen = ConvolutionGenerator(s, grid, truncation=(4, 14))
        assert gen.footprint == (9, 29)
        f = gen.generate(seed=5)
        assert np.all(np.isfinite(f))


class TestInhomogeneousEdges:
    def test_kernel_for_unseen_spectrum_falls_back(self):
        """Windows can see spectra the construction-grid map never met."""
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        inner = ExponentialSpectrum(h=0.3, clx=8.0, cly=8.0)
        outer = GaussianSpectrum(h=1.0, clx=8.0, cly=8.0)
        # a patch whose region lies wholly OUTSIDE the construction grid
        lay = LayeredLayout(
            outer,
            [RegionSpec(Circle(1000.0, 1000.0, 100.0), inner,
                        half_width=20.0)],
        )
        gen = InhomogeneousGenerator(lay, grid, truncation=0.999)
        # construction-grid map holds only the background
        assert gen.weight_map.n_regions == 2  # background + (zero) patch
        # a window near the remote patch must still generate fine
        bn = BlockNoise(seed=6)
        w = gen.generate_window(bn, 230, 230, 16, 16)
        assert np.all(np.isfinite(w.heights))
        assert w.height_std() < 3 * inner.h + 1.0  # sane numbers

    def test_weight_map_cached(self):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        lay = LayeredLayout(GaussianSpectrum(h=1.0, clx=6.0, cly=6.0), [])
        gen = InhomogeneousGenerator(lay, grid)
        assert gen.weight_map is gen.weight_map
        assert gen.kernels is gen.kernels

    def test_point_far_outside_grid(self):
        from repro.core.inhomogeneous import PointOrientedLayout, PointSpec

        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        layout = PointOrientedLayout(
            [PointSpec(-500.0, -500.0, GaussianSpectrum(h=1.0, clx=6.0,
                                                        cly=6.0)),
             PointSpec(32.0, 32.0, ExponentialSpectrum(h=2.0, clx=6.0,
                                                       cly=6.0))],
            half_width=10.0,
        )
        wm = layout.weight_map(grid)
        wm.validate()
        # everything on the grid belongs to the near point
        idx = wm.spectra.index(
            ExponentialSpectrum(h=2.0, clx=6.0, cly=6.0)
        )
        assert np.all(wm.weights[idx] == 1.0)


class TestEngineEdgeCases:
    """Satellite: degenerate tiles/kernels through both engines."""

    @pytest.fixture
    def fat_kernel_gen(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        return {
            engine: ConvolutionGenerator(
                GaussianSpectrum(h=1.0, clx=16.0, cly=16.0), grid,
                truncation=(8, 8), engine=engine,
            )
            for engine in ("spatial", "fft")
        }

    def test_1x1_tiles_both_engines(self, fat_kernel_gen):
        # the pathological plan: every output sample is its own tile
        bn = BlockNoise(seed=31)
        plan = TilePlan(total_nx=6, total_ny=6, tile_nx=1, tile_ny=1)
        tiled = {
            e: generate_tiled(g, bn, plan, backend="serial").heights
            for e, g in fat_kernel_gen.items()
        }
        oneshot = fat_kernel_gen["spatial"].generate_window(bn, 0, 0, 6, 6)
        assert np.max(np.abs(tiled["spatial"] - oneshot)) <= 1e-10
        assert np.max(np.abs(tiled["fft"] - oneshot)) <= 1e-10

    def test_tiles_smaller_than_kernel_both_engines(self, fat_kernel_gen):
        # 5x3 tiles under a 17x17 kernel: the noise window per tile is
        # dominated by halo; both engines must still agree
        bn = BlockNoise(seed=32)
        plan = TilePlan(total_nx=20, total_ny=18, tile_nx=5, tile_ny=3)
        a = generate_tiled(fat_kernel_gen["spatial"], bn, plan).heights
        b = generate_tiled(fat_kernel_gen["fft"], bn, plan).heights
        assert np.max(np.abs(a - b)) <= 1e-10

    @pytest.mark.parametrize("shape,cx,cy", [
        ((4, 6), 1, 2),   # even extents, off-centre
        ((5, 4), 2, 1),   # mixed parity
        ((2, 2), 0, 0),   # minimal even
        ((5, 5), 2, 2),   # odd reference
    ])
    def test_even_and_odd_kernel_extents(self, shape, cx, cy):
        # hand-built kernels with even extents never arise from
        # build_kernel (always odd) but are legal Kernel values
        rng = np.random.default_rng(33)
        kern = Kernel(values=rng.standard_normal(shape), cx=cx, cy=cy,
                      dx=1.0, dy=1.0)
        noise = rng.standard_normal((shape[0] + 11, shape[1] + 13))
        a = apply_kernel_valid_spatial(kern, noise)
        b = apply_kernel_valid_fft(kern, noise, cache=KernelPlanCache())
        assert a.shape == (12, 14)
        assert np.max(np.abs(a - b)) <= 1e-10

    @pytest.mark.parametrize("engine", ["spatial", "fft"])
    def test_zero_variance_h0_both_engines(self, engine):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        spec = GaussianSpectrum(h=0.0, clx=8.0, cly=8.0)
        gen = ConvolutionGenerator(spec, grid, truncation=(6, 6),
                                   engine=engine)
        assert np.array_equal(gen.generate(seed=34), np.zeros(grid.shape))
        w = gen.generate_window(BlockNoise(seed=34), -3, 2, 10, 12)
        assert np.array_equal(w, np.zeros((10, 12)))

    def test_h0_fft_does_not_pollute_cache(self):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        kern = resolve_kernel(
            GaussianSpectrum(h=0.0, clx=8.0, cly=8.0), grid, (4, 4)
        )
        cache = KernelPlanCache()
        out = apply_kernel_valid_fft(kern, np.ones((20, 20)), cache=cache)
        assert np.array_equal(out, np.zeros((12, 12)))
        assert len(cache) == 0  # zero kernels shortcut past the cache

    def test_single_output_sample_fft(self):
        # noise exactly the kernel size: output is the 1x1 dot product
        rng = np.random.default_rng(35)
        kern = Kernel(values=rng.standard_normal((9, 9)), cx=4, cy=4,
                      dx=1.0, dy=1.0)
        noise = rng.standard_normal((9, 9))
        out = apply_kernel_valid_fft(kern, noise, cache=KernelPlanCache())
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(
            float(np.sum(kern.values * noise)), abs=1e-10
        )


class TestNoiseInjection:
    def test_nan_noise_rejected_by_surface(self):
        grid = Grid2D(nx=16, ny=16, lx=32.0, ly=32.0)
        lay = LayeredLayout(GaussianSpectrum(h=1.0, clx=4.0, cly=4.0), [])
        gen = InhomogeneousGenerator(lay, grid, truncation=(4, 4))
        bad = np.zeros(grid.shape)
        bad[3, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            gen.generate(noise=bad)

    def test_inf_heights_rejected_by_renderers(self):
        from repro.core.surface import Surface

        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0)
        h = np.zeros((8, 8))
        h[0, 0] = np.inf
        with pytest.raises(ValueError):
            Surface(heights=h, grid=grid)
