"""Tests for convergence studies and OBJ export."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.core.surface import Surface
from repro.io.objmesh import save_obj
from repro.validation.convergence import (
    enlargement_study,
    estimate_order,
    refinement_study,
)


class TestConvergenceStudies:
    def test_refinement_improves_exponential(self):
        spec = ExponentialSpectrum(h=1.0, clx=20.0, cly=20.0)
        rows = refinement_study(spec, domain=512.0, sizes=[64, 128, 256])
        errs = [r.rel_error_at_zero for r in rows]
        assert errs[0] > errs[1] > errs[2]

    def test_refinement_order_near_one(self):
        # exponential out-of-band tail ~ K^-3 -> integrated tail ~ dx
        spec = ExponentialSpectrum(h=1.0, clx=20.0, cly=20.0)
        rows = refinement_study(spec, domain=512.0,
                                sizes=[64, 128, 256, 512])
        p = estimate_order(rows, knob="dx")
        assert 0.6 < p < 1.6

    def test_enlargement_improves_gaussian_wraparound(self):
        # fixed fine spacing; small domains wrap the Gaussian ACF
        spec = GaussianSpectrum(h=1.0, clx=30.0, cly=30.0)
        rows = enlargement_study(spec, dx=2.0, sizes=[64, 96, 128])
        errs = [r.rel_error_at_zero for r in rows]
        assert errs[0] > errs[-1]

    def test_converged_rows_excluded_from_order(self):
        spec = GaussianSpectrum(h=1.0, clx=10.0, cly=10.0)
        rows = refinement_study(spec, domain=512.0, sizes=[256, 512])
        # both machine-exact: no order can be estimated
        with pytest.raises(ValueError):
            estimate_order(rows)

    def test_validation(self):
        spec = GaussianSpectrum(h=1.0, clx=10.0, cly=10.0)
        with pytest.raises(ValueError):
            refinement_study(spec, 512.0, sizes=[64])
        with pytest.raises(ValueError):
            enlargement_study(spec, 2.0, sizes=[0, 64])
        rows = refinement_study(spec, 512.0, sizes=[64, 128])
        with pytest.raises(ValueError):
            estimate_order(rows, knob="volume")

    def test_row_as_dict(self):
        spec = ExponentialSpectrum(h=1.0, clx=20.0, cly=20.0)
        rows = refinement_study(spec, 256.0, sizes=[32, 64])
        d = rows[0].as_dict()
        assert {"nx", "lx", "dx", "rel_error_at_zero",
                "max_abs_error"} <= set(d)


class TestObjExport:
    @pytest.fixture
    def surface(self, rng):
        grid = Grid2D(nx=8, ny=6, lx=16.0, ly=12.0)
        return Surface(heights=rng.standard_normal(grid.shape), grid=grid,
                       origin=(100.0, 50.0))

    def test_vertex_and_face_counts(self, surface, tmp_path):
        path = tmp_path / "mesh.obj"
        save_obj(path, surface)
        lines = path.read_text().splitlines()
        verts = [l for l in lines if l.startswith("v ")]
        faces = [l for l in lines if l.startswith("f ")]
        assert len(verts) == 8 * 6
        assert len(faces) == 2 * 7 * 5

    def test_vertex_coordinates_include_origin(self, surface, tmp_path):
        path = tmp_path / "mesh.obj"
        save_obj(path, surface, z_scale=2.0)
        first_v = next(l for l in path.read_text().splitlines()
                       if l.startswith("v "))
        x, y, z = (float(t) for t in first_v.split()[1:])
        assert x == pytest.approx(100.0)
        assert y == pytest.approx(50.0)
        assert z == pytest.approx(2.0 * surface.heights[0, 0], rel=1e-5)

    def test_face_indices_valid(self, surface, tmp_path):
        path = tmp_path / "mesh.obj"
        save_obj(path, surface)
        n_verts = 8 * 6
        for line in path.read_text().splitlines():
            if line.startswith("f "):
                ids = [int(t) for t in line.split()[1:]]
                assert all(1 <= i <= n_verts for i in ids)

    def test_decimation(self, surface, tmp_path):
        path = tmp_path / "mesh.obj"
        save_obj(path, surface, decimate=2)
        verts = [l for l in path.read_text().splitlines()
                 if l.startswith("v ")]
        assert len(verts) == 4 * 3

    def test_validation(self, surface, tmp_path):
        with pytest.raises(ValueError):
            save_obj(tmp_path / "m.obj", surface, decimate=0)
        with pytest.raises(ValueError):
            save_obj(tmp_path / "m.obj", surface, decimate=8)
