"""Tests for marginal transforms and anisotropy estimation."""

import numpy as np
import pytest
from scipy import stats as sstats

from repro.core.convolution import convolve_full
from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.core.spectra_ext import RotatedSpectrum
from repro.core.surface import Surface
from repro.core.transform import (
    correlation_distortion,
    gaussian_to_marginal,
    lognormal_transform,
    transform_surface,
    uniform_transform,
    weibull_transform,
)
from repro.stats.anisotropy import estimate_anisotropy, spectral_moments
from repro.stats.spectral import periodogram


@pytest.fixture(scope="module")
def gaussian_field():
    grid = Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)
    return convolve_full(
        GaussianSpectrum(h=1.0, clx=20.0, cly=20.0), grid, seed=5
    ), grid


class TestMarginalTransforms:
    def test_uniform_bounds_and_distribution(self, gaussian_field):
        f, _ = gaussian_field
        u = uniform_transform(f, low=2.0, high=4.0)
        assert u.min() >= 2.0 and u.max() <= 4.0
        # uniform: flat histogram
        hist, _ = np.histogram(u, bins=10, range=(2.0, 4.0))
        assert hist.std() / hist.mean() < 0.1

    def test_lognormal_skew_and_positivity(self, gaussian_field):
        f, _ = gaussian_field
        t = lognormal_transform(f, sigma=0.8)
        assert np.all(t > 0.0)
        assert sstats.skew(t.ravel()) > 1.5

    def test_weibull_shape(self, gaussian_field):
        f, _ = gaussian_field
        t = weibull_transform(f, shape=1.2, scale=2.0)
        assert np.all(t >= 0.0)
        assert sstats.skew(t.ravel()) > 0.5

    def test_monotonicity_preserves_ranks(self, gaussian_field):
        f, _ = gaussian_field
        t = lognormal_transform(f, sigma=0.5)
        i = np.argsort(f.ravel())
        assert np.all(np.diff(t.ravel()[i]) >= 0.0)

    def test_quantiles_calibrated(self, gaussian_field):
        # P(t < median of target) ~ 0.5
        f, _ = gaussian_field
        t = lognormal_transform(f, sigma=0.5, scale=3.0)
        assert np.mean(t < 3.0) == pytest.approx(0.5, abs=0.03)

    def test_correlation_distortion_below_one(self, gaussian_field):
        f, _ = gaussian_field
        t = lognormal_transform(f, sigma=1.0)
        d = correlation_distortion(f, t, lag=2)
        assert 0.5 < d < 1.0

    def test_affine_transform_no_distortion(self, gaussian_field):
        f, _ = gaussian_field
        t = uniform_transform(f)  # uniform is NOT affine...
        # an actually-affine map through the machinery:
        t_affine = gaussian_to_marginal(
            f, lambda u: sstats.norm.ppf(u, loc=5.0, scale=2.0)
        )
        d = correlation_distortion(f, t_affine, lag=2)
        assert d == pytest.approx(1.0, abs=0.02)

    def test_surface_wrapper(self, gaussian_field):
        f, grid = gaussian_field
        s = Surface(heights=f, grid=grid, provenance={"id": 1})
        out = transform_surface(s, lambda u: u**2, label="square-uniform")
        assert out.provenance["marginal_transform"] == "square-uniform"
        assert out.grid == grid

    def test_validation(self, gaussian_field):
        f, _ = gaussian_field
        with pytest.raises(ValueError):
            lognormal_transform(f, sigma=0.0)
        with pytest.raises(ValueError):
            weibull_transform(f, shape=-1.0)
        with pytest.raises(ValueError):
            uniform_transform(f, low=1.0, high=1.0)
        with pytest.raises(ValueError):
            gaussian_to_marginal(np.zeros((4, 4)), lambda u: u)
        with pytest.raises(ValueError):
            correlation_distortion(np.zeros((8, 8)) , np.zeros((8, 8)))


class TestAnisotropy:
    @pytest.fixture(scope="class")
    def grid(self):
        return Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)

    def test_isotropic_low_coherence(self, grid):
        f = convolve_full(GaussianSpectrum(h=1.0, clx=25.0, cly=25.0),
                          grid, seed=7)
        est = estimate_anisotropy(f, grid)
        assert est.ratio < 1.25
        assert est.coherence < 0.25

    def test_axis_aligned_anisotropy(self, grid):
        f = convolve_full(GaussianSpectrum(h=1.0, clx=10.0, cly=40.0),
                          grid, seed=8)
        est = estimate_anisotropy(f, grid)
        # long correlation along y
        assert abs(abs(est.angle) - np.pi / 2) < 0.15
        assert est.ratio == pytest.approx(4.0, rel=0.3)
        assert est.coherence > 0.7

    def test_quarter_rotation_swaps_axis(self, grid):
        base = GaussianSpectrum(h=1.0, clx=10.0, cly=40.0)
        f = convolve_full(RotatedSpectrum(base, np.pi / 2.0), grid, seed=9)
        est = estimate_anisotropy(f, grid)
        assert abs(est.angle) < 0.15  # long axis now along x

    def test_symmetrised_midangle_looks_isotropic(self, grid):
        # documented RotatedSpectrum limitation: a 45-degree rotation's
        # even-part symmetrisation balances the axes
        base = GaussianSpectrum(h=1.0, clx=10.0, cly=40.0)
        f = convolve_full(RotatedSpectrum(base, np.pi / 4.0), grid, seed=10)
        est = estimate_anisotropy(f, grid)
        assert est.ratio < 1.3

    def test_spectral_moments_symmetric(self, grid, rng):
        est = periodogram(rng.standard_normal(grid.shape), grid)
        m = spectral_moments(est, grid)
        assert m[0, 1] == pytest.approx(m[1, 0])
        assert m[0, 0] > 0 and m[1, 1] > 0

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            spectral_moments(np.zeros((4, 4)), grid)
        with pytest.raises(ValueError):
            spectral_moments(np.zeros(grid.shape), grid)
