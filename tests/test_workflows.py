"""End-to-end workflow integration tests.

Each test exercises a realistic multi-module pipeline the way a
downstream user would chain the public API — the places where unit
tests cannot catch interface drift.
"""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.rng import BlockNoise
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.core.surface import Surface
from repro.core.transform import lognormal_transform
from repro.fields.parameter_map import LayeredLayout, PlateLattice, RegionSpec
from repro.fields.regions import Circle, Rectangle
from repro.figures import figure2_layout, figure_surface
from repro.io.npzio import load_surface, save_surface
from repro.parallel.executor import generate_tiled
from repro.parallel.tiles import TilePlan
from repro.propagation.link import evaluate_link
from repro.stats.fitting import classify_family
from repro.stats.local import interior_region_mask, region_statistics


class TestGenerateClassifyRoundTrip:
    def test_fig2_quadrants_show_family_signatures(self):
        """The Figure 2 pipeline realises the family *signatures*.

        A quadrant interior holds only ~8 correlation lengths at the
        paper's parameters — too few for a single-slab ACF fit to
        separate neighbouring families (that discrimination is tested
        at proper scale in test_fitting.py).  What IS identifiable per
        quadrant, and what the paper's figure visually shows, is the
        tail class: the exponential quadrant carries far more
        small-scale slope energy than the Gaussian one, and its heavy
        tail is preferred by the classifier over the Gaussian shape.
        """
        n = 384
        surface = figure_surface("fig2", n=n, seed=11)
        grid = surface.grid
        q = n // 2
        m = n // 6
        q1 = surface.heights[q + m :, q + m :]   # gaussian h=1 cl=40
        q3 = surface.heights[: q - m, : q - m]   # exponential h=2 cl=80

        def norm_slope(slab, cl, h):
            gx = np.diff(slab, axis=0) / grid.dx
            return float(np.sqrt(np.mean(gx**2))) * cl / h

        assert norm_slope(q3, 80.0, 2.0) > 2.5 * norm_slope(q1, 40.0, 1.0)

        # classifier on the heavy-tail quadrant: exponential-class
        # candidates beat the gaussian shape decisively
        best, fits = classify_family(q3, grid.dx, cl_guess=60.0)
        key = best.kind if best.order is None else \
            f"power_law_{best.order:g}"
        assert key in {"exponential", "power_law_2"}
        assert fits["gaussian"].rss > 1.5 * best.rss

    def test_save_load_classify(self, tmp_path):
        # 384^2: enough correlation lengths that exponential separates
        # from the adjacent power-law N=2 candidate
        grid = Grid2D(nx=384, ny=384, lx=1536.0, ly=1536.0)
        spec = ExponentialSpectrum(h=1.2, clx=25.0, cly=25.0)
        gen = ConvolutionGenerator(spec, grid)
        s = Surface(heights=gen.generate(seed=3), grid=grid,
                    provenance={"spectrum": spec.to_dict()})
        save_surface(tmp_path / "s.npz", s)
        loaded = load_surface(tmp_path / "s.npz")
        best, _ = classify_family(loaded.heights, loaded.grid.dx,
                                  cl_guess=20.0)
        assert best.kind == "exponential"
        assert best.h == pytest.approx(1.2, rel=0.25)


class TestInhomogeneousPipelines:
    def test_tiled_inhomogeneous_region_stats(self):
        """Tile-generate a layered surface, then verify per-region h."""
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        lay = LayeredLayout(
            GaussianSpectrum(h=1.0, clx=20.0, cly=20.0),
            [RegionSpec(Circle(256.0, 256.0, 120.0),
                        ExponentialSpectrum(h=0.2, clx=20.0, cly=20.0),
                        half_width=40.0)],
        )
        gen = InhomogeneousGenerator(lay, grid, truncation=0.999)
        plan = TilePlan(total_nx=128, total_ny=128, tile_nx=48, tile_ny=64)
        s = generate_tiled(gen, BlockNoise(seed=21), plan, backend="thread",
                           workers=2)
        pond = region_statistics(
            s, interior_region_mask(s, Circle(256.0, 256.0, 120.0), 50.0)
        )
        assert pond["std"] == pytest.approx(0.2, rel=0.4)

    def test_transformed_inhomogeneous_terrain(self):
        """Plates -> generate -> non-Gaussian marginal, ranks preserved."""
        grid = Grid2D(nx=96, ny=96, lx=384.0, ly=384.0)
        lat = PlateLattice.quadrants(
            384.0, 384.0,
            GaussianSpectrum(h=0.5, clx=15.0, cly=15.0),
            GaussianSpectrum(h=1.0, clx=15.0, cly=15.0),
            GaussianSpectrum(h=1.5, clx=15.0, cly=15.0),
            GaussianSpectrum(h=1.0, clx=15.0, cly=15.0),
            half_width=20.0,
        )
        s = InhomogeneousGenerator(lat, grid, truncation=0.999).generate(
            seed=4
        )
        t = lognormal_transform(s.heights, sigma=0.6)
        # the rough quadrant remains the most variable after transform
        rough = t[:40, :40]
        smooth = t[56:, 56:]
        assert rough.std() > smooth.std()


class TestPropagationPipeline:
    def test_link_over_generated_and_reloaded_surface(self, tmp_path):
        grid = Grid2D(nx=256, ny=64, lx=2048.0, ly=512.0)
        spec = GaussianSpectrum(h=3.0, clx=60.0, cly=60.0)
        s = Surface(
            heights=ConvolutionGenerator(spec, grid).generate(seed=7),
            grid=grid,
        )
        save_surface(tmp_path / "terrain.npz", s)
        terrain = load_surface(tmp_path / "terrain.npz")
        link = evaluate_link(
            terrain, (100.0, 256.0), (1900.0, 256.0), 915e6,
            tx_height=5.0, rx_height=2.0,
        )
        assert link.distance == pytest.approx(1800.0)
        assert np.isfinite(link.total_db)
        assert link.total_db > 90.0  # at least free space at 1.8 km


class TestRegionMaskedQA:
    def test_rectangle_region_statistics_workflow(self):
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        lat = PlateLattice(
            [0.0, 256.0, 512.0], [0.0, 512.0],
            [[GaussianSpectrum(h=0.4, clx=12.0, cly=12.0)],
             [GaussianSpectrum(h=1.6, clx=12.0, cly=12.0)]],
            half_width=24.0,
        )
        s = InhomogeneousGenerator(lat, grid, truncation=0.999).generate(
            seed=13
        )
        left = region_statistics(
            s, interior_region_mask(
                s, Rectangle(0.0, 256.0, 0.0, 512.0), 40.0
            )
        )
        right = region_statistics(
            s, interior_region_mask(
                s, Rectangle(256.0, 512.0, 0.0, 512.0), 40.0
            )
        )
        assert left["std"] == pytest.approx(0.4, rel=0.3)
        assert right["std"] == pytest.approx(1.6, rel=0.3)
