"""Run the deterministic doctest examples embedded in docstrings.

Only modules whose examples are seeded/deterministic are included;
examples marked ``# doctest: +SKIP`` stay illustrative.
"""

import doctest

import pytest

import repro.core.convolution
import repro.core.grid
import repro.core.spectra


@pytest.mark.parametrize(
    "module",
    [repro.core.convolution, repro.core.grid, repro.core.spectra],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
