"""Distributed tile-sharding tests: protocol, lease ledger, scale-out.

Layered like the subsystem itself: pure framing over socketpairs, the
lease state machine under a fake clock (no sockets, no sleeps), run-spec
round-trips, then full coordinator/worker runs — in-process worker
threads where determinism is the point, real ``python -m repro dist
worker`` subprocesses where process isolation is the point (crash
drills, the 2048^2 bit-identity gate).

Everything here asserts determinism and bookkeeping, never timing.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.dist import Coordinator, LeaseLedger, RunSpec, generate_dist
from repro.dist import protocol
from repro.dist.worker import run_worker
from repro.io.store import SurfaceStore
from repro.jobs.faults import FaultPlan, FaultSpec
from repro.jobs.retry import RetryPolicy
from repro.parallel.executor import (FailureBudgetExceeded, TileFailedError,
                                     generate_tiled)
from repro.parallel.tiles import TilePlan

pytestmark = pytest.mark.dist


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_json_round_trip(self):
        a, b = self._pair()
        with a, b:
            msg = {"type": "lease", "n": 3, "nested": {"x": [1, 2]}}
            protocol.send_json(a, msg)
            assert protocol.recv_json(b) == msg

    def test_binary_round_trip(self):
        a, b = self._pair()
        with a, b:
            payload = np.arange(257, dtype=np.float64).tobytes()
            protocol.send_binary(a, payload)
            kind, got = protocol.recv_frame(b)
            assert kind == protocol.KIND_BINARY
            assert got == payload

    def test_oversize_send_refused(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        a, b = self._pair()
        with a, b:
            with pytest.raises(protocol.ProtocolError, match="refusing"):
                protocol.send_binary(a, b"x" * 65)

    def test_oversize_recv_refused(self, monkeypatch):
        a, b = self._pair()
        with a, b:
            # forge a header claiming a frame beyond the limit
            a.sendall(struct.pack(">IB", protocol.MAX_FRAME_BYTES + 1,
                                  protocol.KIND_BINARY))
            with pytest.raises(protocol.ProtocolError, match="refusing"):
                protocol.recv_frame(b)

    def test_unknown_frame_kind_refused(self):
        a, b = self._pair()
        with a, b:
            a.sendall(struct.pack(">IB", 0, 7))
            with pytest.raises(protocol.ProtocolError, match="kind"):
                protocol.recv_frame(b)

    def test_eof_at_boundary_is_peer_gone(self):
        a, b = self._pair()
        with b:
            a.close()
            with pytest.raises(protocol.PeerGone):
                protocol.recv_frame(b)

    def test_eof_mid_frame_is_protocol_error(self):
        a, b = self._pair()
        with b:
            a.sendall(struct.pack(">IB", 100, protocol.KIND_JSON) + b"{")
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)

    def test_recv_json_rejects_binary_frame(self):
        a, b = self._pair()
        with a, b:
            protocol.send_binary(a, b"\x00\x01")
            with pytest.raises(protocol.ProtocolError, match="JSON"):
                protocol.recv_json(b)

    def test_recv_json_rejects_non_object(self):
        a, b = self._pair()
        with a, b:
            a.sendall(struct.pack(">IB", 2, protocol.KIND_JSON) + b"[]")
            with pytest.raises(protocol.ProtocolError, match="object"):
                protocol.recv_json(b)


# ---------------------------------------------------------------------------
# run spec
# ---------------------------------------------------------------------------
class TestRunSpec:
    def _spec(self, **over):
        kw = dict(
            rebuild={"kind": "convolution", "spectrum": {"kind": "gaussian"}},
            noise_seed=3,
            plan={"total_nx": 64, "total_ny": 64,
                  "tile_nx": 32, "tile_ny": 32},
            store_path="/tmp/s",
            access="shared",
        )
        kw.update(over)
        return RunSpec(**kw)

    def test_wire_round_trip(self):
        spec = self._spec(obs=True, faults=[{"tile": 1, "kind": "raise"}])
        again = RunSpec.from_wire(spec.to_wire())
        assert again == spec

    def test_ship_mode_needs_no_store(self):
        spec = self._spec(access="ship", store_path=None)
        assert RunSpec.from_wire(spec.to_wire()).store_path is None

    def test_shared_requires_store_path(self):
        with pytest.raises(ValueError, match="store path"):
            self._spec(store_path=None)

    def test_bad_access_mode(self):
        with pytest.raises(ValueError, match="access"):
            self._spec(access="carrier-pigeon")

    def test_malformed_wire_payload(self):
        with pytest.raises(ValueError, match="malformed"):
            RunSpec.from_wire({"rebuild": {"kind": "x"}})


# ---------------------------------------------------------------------------
# plan sharding + halo accounting
# ---------------------------------------------------------------------------
class TestShards:
    def test_partition_is_contiguous_and_balanced(self):
        plan = TilePlan(total_nx=70, total_ny=70, tile_nx=10, tile_ny=10)
        shards = plan.shards(3)
        flat = [i for s in shards for i in s]
        assert flat == list(range(len(plan)))  # contiguous, complete
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_tiles(self):
        plan = TilePlan(total_nx=32, total_ny=32, tile_nx=32, tile_ny=32)
        shards = plan.shards(4)
        assert [len(s) for s in shards] == [1, 0, 0, 0]

    def test_rejects_nonpositive(self):
        plan = TilePlan(total_nx=32, total_ny=32, tile_nx=16, tile_ny=16)
        with pytest.raises(ValueError):
            plan.shards(0)

    def test_halo_samples_arithmetic(self):
        plan = TilePlan(total_nx=8, total_ny=8, tile_nx=4, tile_ny=4)
        read, output = plan.halo_samples((3, 5))
        assert output == 64
        assert read == 4 * (4 + 2) * (4 + 4)  # four tiles of (nx+2)(ny+4)

    def test_halo_exceeding_tile_size(self):
        # a 9x9 kernel over 4x4 tiles: each tile reads a noise window
        # dominated by halo — legal, just inefficient
        plan = TilePlan(total_nx=8, total_ny=8, tile_nx=4, tile_ny=4)
        read, output = plan.halo_samples((9, 9))
        assert read == 4 * 12 * 12
        assert plan.halo_overhead((9, 9)) == pytest.approx(read / 64 - 1)

    def test_halo_rejects_bad_kernel(self):
        plan = TilePlan(total_nx=8, total_ny=8, tile_nx=4, tile_ny=4)
        with pytest.raises(ValueError):
            plan.halo_samples((0, 3))


# ---------------------------------------------------------------------------
# lease ledger (fake clock throughout; no sockets, no sleeps)
# ---------------------------------------------------------------------------
def _ledger(n_tiles=4, *, policy=None, timeout=10.0, shards=None,
            done=None):
    plan = TilePlan(total_nx=n_tiles * 8, total_ny=8, tile_nx=8, tile_ny=8)
    bitmap = done if done is not None else np.zeros(n_tiles, dtype=bool)
    return LeaseLedger(bitmap, plan.tiles(), policy=policy,
                       lease_timeout_s=timeout, shards=shards)


class TestLeaseLedger:
    def test_grant_complete_lifecycle(self):
        led = _ledger(2)
        verdict, lease = led.request("w0", 0, now=0.0)
        assert verdict == "grant"
        assert lease.attempt == 1 and lease.deadline == 10.0
        assert led.complete(lease.index, "w0", now=1.0) is True
        assert led.done[lease.index]
        verdict, lease2 = led.request("w0", 0, now=1.0)
        assert verdict == "grant" and lease2.index != lease.index
        led.complete(lease2.index, "w0", now=2.0)
        assert led.request("w0", 0, now=2.0) == ("complete", None)
        assert led.summary()["pending"] == 0

    def test_all_leased_means_wait(self):
        led = _ledger(1)
        led.request("w0", 0, now=0.0)
        verdict, seconds = led.request("w1", 0, now=0.0)
        assert verdict == "wait"
        assert 0.05 <= seconds <= 1.0  # clamped poll hint

    def test_expiry_releases_with_backoff(self):
        pol = RetryPolicy(backoff_base=0.5, backoff_factor=2.0)
        led = _ledger(1, policy=pol, timeout=10.0)
        _, lease = led.request("w0", 0, now=0.0)
        # deadline passes: next request re-leases at attempt 2, but only
        # after the deterministic backoff window
        verdict, detail = led.request("w1", 0, now=10.0)
        assert verdict == "wait"
        assert led.expired == 1
        verdict, lease2 = led.request("w1", 0, now=10.0 + pol.delay(1))
        assert verdict == "grant"
        assert lease2.index == lease.index and lease2.attempt == 2
        # expiries are re-leases, not failures
        assert led.total_failures == 0

    def test_release_worker_requeues_all_its_leases(self):
        led = _ledger(4, shards=[[0, 1], [2, 3]])
        _, l0 = led.request("w0", 0, now=0.0)
        _, l1 = led.request("w0", 0, now=0.0)
        _, l2 = led.request("w1", 1, now=0.0)
        released = led.release_worker("w0", now=1.0)
        assert sorted(released) == sorted([l0.index, l1.index])
        assert led.worker_releases == 2
        assert l2.index in led.leases  # the healthy worker keeps its lease

    def test_straggler_completion_is_counted_duplicate(self):
        led = _ledger(1, timeout=10.0)
        _, lease = led.request("w0", 0, now=0.0)
        led.expire(now=20.0)
        _, release = led.request("w1", 0, now=20.0 + 1.0)
        assert release.index == lease.index
        assert led.complete(lease.index, "w1", now=22.0) is True
        # the straggler reports afterwards: accepted, counted, not re-marked
        assert led.complete(lease.index, "w0", now=23.0) is False
        assert led.duplicates == 1
        assert led.completions[lease.index] == 2
        assert led.completed == 1

    def test_fail_exhausts_max_attempts(self):
        pol = RetryPolicy(max_attempts=2, backoff_base=0.01)
        led = _ledger(1, policy=pol)
        _, lease = led.request("w0", 0, now=0.0)
        led.fail(lease.index, "w0", "boom", now=0.0)
        _, lease = led.request("w0", 0, now=1.0)
        assert lease.attempt == 2
        with pytest.raises(TileFailedError):
            led.fail(lease.index, "w0", "boom again", now=1.0)

    def test_failure_budget_is_run_wide(self):
        pol = RetryPolicy(max_attempts=10, backoff_base=0.01,
                          failure_budget=2)
        led = _ledger(4, policy=pol)
        for k in range(2):
            _, lease = led.request("w0", 0, now=float(k))
            led.fail(lease.index, "w0", "boom", now=float(k))
        _, lease = led.request("w0", 0, now=5.0)
        with pytest.raises(FailureBudgetExceeded):
            led.fail(lease.index, "w0", "boom", now=5.0)

    def test_resumed_bitmap_is_never_queued(self):
        done = np.array([True, False, True, False])
        led = _ledger(4, done=done)
        granted = set()
        for k in range(2):
            _, lease = led.request("w0", 0, now=float(k))
            granted.add(lease.index)
        assert granted == {1, 3}
        assert led.request("w1", 0, now=3.0)[0] == "wait"

    def test_home_shard_first_then_steal_from_fullest(self):
        led = _ledger(4, shards=[[0, 1], [2, 3]])
        _, first = led.request("w1", 1, now=0.0)
        assert first.index in (2, 3)  # home shard drained first
        _, second = led.request("w1", 1, now=0.0)
        assert second.index in (2, 3)
        _, stolen = led.request("w1", 1, now=0.0)
        assert stolen.index in (0, 1)  # idle worker steals

    def test_shards_must_cover_every_index(self):
        with pytest.raises(ValueError, match="cover"):
            _ledger(4, shards=[[0, 1], [3]])

    def test_bitmap_tile_length_mismatch(self):
        plan = TilePlan(total_nx=16, total_ny=16, tile_nx=8, tile_ny=8)
        with pytest.raises(ValueError, match="bits"):
            LeaseLedger(np.zeros(3, dtype=bool), plan.tiles())


# ---------------------------------------------------------------------------
# coordinator/worker end-to-end
# ---------------------------------------------------------------------------
def _problem(n, tile, seed, cl=20.0):
    grid = Grid2D(nx=n, ny=n, lx=float(n), ly=float(n))
    spectrum = GaussianSpectrum(h=1.0, clx=cl, cly=cl)
    gen = ConvolutionGenerator(spectrum, grid, truncation=0.9999)
    rebuild = {
        "kind": "convolution",
        "spectrum": spectrum.to_dict(),
        "grid": {"nx": n, "ny": n, "lx": float(n), "ly": float(n)},
        "truncation": 0.9999,
        "engine": "auto",
        "dtype": "float64",
    }
    plan = TilePlan(total_nx=n, total_ny=n, tile_nx=tile, tile_ny=tile)
    return gen, rebuild, BlockNoise(seed=seed), plan, grid


def _store_for(tmp_path, name, n, tile, grid):
    return SurfaceStore.create(
        tmp_path / name, shape=(n, n), chunk=(tile, tile),
        dx=grid.dx, dy=grid.dy, meta={},
    )


class TestDistEndToEnd:
    def test_two_workers_bit_identical_to_serial_2048(self, tmp_path):
        """The headline gate: a 2048^2 run sharded over two
        process-isolated workers equals the single-host tiled path."""
        gen, rebuild, noise, plan, grid = _problem(2048, 256, seed=11, cl=8.0)
        ref = generate_tiled(gen, noise, plan, backend="serial")
        store = _store_for(tmp_path, "dist2048", 2048, 256, grid)
        try:
            surface = generate_dist(rebuild, noise, plan, store, workers=2)
            assert np.array_equal(np.asarray(surface.heights), ref.heights)
            dist = surface.provenance["dist"]
            assert dist["workers"] == 2
            assert dist["lease"]["completed"] == len(plan)
            assert dist["lease"]["pending"] == 0
            assert surface.provenance["store"]["chunks_done"] == len(plan)
        finally:
            store.close()

    def test_backend_dist_via_generate_tiled(self, tmp_path):
        gen, rebuild, noise, plan, grid = _problem(128, 64, seed=5)
        ref = generate_tiled(gen, noise, plan, backend="serial")
        store = _store_for(tmp_path, "viabackend", 128, 64, grid)
        try:
            surface = generate_tiled(
                gen, noise, plan, backend="dist", workers=2,
                out=store, rebuild=rebuild,
            )
            assert np.array_equal(np.asarray(surface.heights), ref.heights)
            assert surface.provenance["backend"] == "dist"
        finally:
            store.close()

    def test_backend_dist_requires_store_and_rebuild(self):
        gen, rebuild, noise, plan, _grid = _problem(64, 32, seed=1)
        with pytest.raises(ValueError, match="SurfaceStore"):
            generate_tiled(gen, noise, plan, backend="dist", rebuild=rebuild)

    def test_kill_one_worker_relesases_without_double_writes(self, tmp_path):
        """Crash drill: a kill fault takes down a real worker process
        mid-run; the run completes via re-lease and every chunk is
        completed exactly once (bitmap + completion audit)."""
        gen, rebuild, noise, plan, grid = _problem(128, 32, seed=9)
        ref = generate_tiled(gen, noise, plan, backend="serial")
        store = _store_for(tmp_path, "killdrill", 128, 32, grid)
        fault = FaultPlan([FaultSpec(tile=3, attempt=1, kind="kill")])
        try:
            surface = generate_dist(
                rebuild, noise, plan, store, workers=2, fault_plan=fault,
                lease_timeout_s=15.0,
            )
            assert np.array_equal(np.asarray(surface.heights), ref.heights)
            lease = surface.provenance["dist"]["lease"]
            assert lease["pending"] == 0
            assert lease["completed"] == len(plan)
            # the killed worker never reported tile 3, so no tile may
            # have two completion reports — no double-written chunks
            assert lease["duplicates"] == 0
            assert lease["worker_releases"] >= 1
            assert bool(store.done.all())
        finally:
            store.close()

    def test_resume_off_bitmap_skips_done_chunks(self, tmp_path):
        """A second coordinator over a half-finished store leases only
        the bitmap's complement and lands bit-identical."""
        gen, rebuild, noise, plan, grid = _problem(128, 32, seed=4)
        ref = generate_tiled(gen, noise, plan, backend="serial")
        store = _store_for(tmp_path, "resume", 128, 32, grid)
        # first pass: one in-process worker computes half the tiles
        half = len(plan) // 2
        spec = RunSpec(rebuild=rebuild, noise_seed=4,
                       plan={"total_nx": 128, "total_ny": 128,
                             "tile_nx": 32, "tile_ny": 32},
                       store_path=str(store.path), access="shared")
        coord = Coordinator(spec, plan, store, lease_timeout_s=30.0)
        host, port = coord.start()
        t = threading.Thread(
            target=run_worker, args=(host, port),
            kwargs={"max_tiles": half}, daemon=True,
        )
        t.start()
        t.join(timeout=60.0)
        assert not t.is_alive()
        # end the first pass; serve persists progress before re-raising
        coord.abort(RuntimeError("first pass over"))
        with pytest.raises(RuntimeError, match="first pass"):
            coord.serve(timeout=10.0)
        store.close()

        reopened = SurfaceStore.open(tmp_path / "resume", "r+")
        try:
            assert reopened.done.sum() == half
            remaining = len(plan) - half
            surface = generate_dist(rebuild, noise, plan, reopened,
                                    workers=2)
            lease = surface.provenance["dist"]["lease"]
            assert lease["granted"] == remaining
            assert lease["completed"] == remaining
            assert np.array_equal(np.asarray(surface.heights), ref.heights)
        finally:
            reopened.close()

    def test_ship_mode_bit_identical(self, tmp_path):
        """``access="ship"``: workers have no store; heights travel as
        binary frames and the coordinator writes them."""
        gen, rebuild, noise, plan, grid = _problem(96, 32, seed=6)
        ref = generate_tiled(gen, noise, plan, backend="serial")
        store = _store_for(tmp_path, "shipmode", 96, 32, grid)
        spec = RunSpec(rebuild=rebuild, noise_seed=6,
                       plan={"total_nx": 96, "total_ny": 96,
                             "tile_nx": 32, "tile_ny": 32},
                       access="ship", store_path=None)
        coord = Coordinator(spec, plan, store, n_shards=2)
        host, port = coord.start()
        threads = [
            threading.Thread(target=run_worker, args=(host, port),
                             daemon=True)
            for _ in range(2)
        ]
        try:
            for t in threads:
                t.start()
            summary = coord.serve(timeout=120.0)
            assert summary["lease"]["pending"] == 0
            heights = store.heights("r")
            assert np.array_equal(np.asarray(heights), ref.heights)
            assert bool(store.done.all())
        finally:
            for t in threads:
                t.join(timeout=10.0)
            store.close()

    def test_kernel_halo_exceeding_tile_size(self, tmp_path):
        """Tiny tiles under a large kernel (halo > tile edge on both
        axes) still shard and reassemble bit-identically."""
        gen, rebuild, noise, plan, grid = _problem(64, 16, seed=8, cl=20.0)
        assert max(gen.kernel.shape) > 16  # the premise: halo > tile
        ref = generate_tiled(gen, noise, plan, backend="serial")
        store = _store_for(tmp_path, "bighalo", 64, 16, grid)
        try:
            surface = generate_dist(rebuild, noise, plan, store, workers=2)
            assert np.array_equal(np.asarray(surface.heights), ref.heights)
        finally:
            store.close()

    def test_protocol_mismatch_is_refused(self, tmp_path):
        gen, rebuild, noise, plan, grid = _problem(64, 32, seed=2)
        store = _store_for(tmp_path, "mismatch", 64, 32, grid)
        spec = RunSpec(rebuild=rebuild, noise_seed=2,
                       plan={"total_nx": 64, "total_ny": 64,
                             "tile_nx": 32, "tile_ny": 32},
                       store_path=str(store.path), access="shared")
        coord = Coordinator(spec, plan, store)
        host, port = coord.start()
        try:
            with socket.create_connection((host, port), timeout=5.0) as s:
                s.settimeout(5.0)
                protocol.send_json(s, {"type": "hello",
                                       "protocol": "repro.dist/v0"})
                reply = protocol.recv_json(s)
                assert reply["type"] == "abort"
                assert "protocol mismatch" in reply["error"]
        finally:
            coord.abort(RuntimeError("test over"))
            with pytest.raises(RuntimeError):
                coord.serve(timeout=5.0)
            store.close()


# ---------------------------------------------------------------------------
# CLI validation (satellite: --workers must be positive everywhere)
# ---------------------------------------------------------------------------
class TestCLIValidation:
    @pytest.mark.parametrize("argv", [
        ["generate", "--cl", "20", "--workers", "0"],
        ["generate", "--cl", "20", "--workers", "-2"],
        ["figure", "fig3", "--workers", "0"],
        ["job", "run", "--cl", "20", "--checkpoint", "x", "--tile", "16",
         "--workers", "0"],
        ["job", "resume", "ckpt", "--workers", "0"],
        ["dist", "coordinator", "--cl", "20", "--tile", "16",
         "--store", "s", "--workers", "0"],
        ["dist", "coordinator", "--cl", "20", "--tile", "0", "--store", "s"],
        ["dist", "worker", "--connect", "h:1", "--max-tiles", "0"],
    ])
    def test_nonpositive_workers_rejected(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2  # argparse usage error
        assert "positive integer" in capsys.readouterr().err

    def test_workers_fractional_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["generate", "--cl", "20", "--workers", "1.5"])
        assert exc.value.code == 2

    def test_generate_dist_requires_store(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--store"):
            main(["generate", "--cl", "20", "--n", "32", "--domain", "32",
                  "--tile", "16", "--backend", "dist"])

    def test_generate_dist_requires_tile(self):
        # without --tile the one-shot path would silently ignore the
        # backend — a "distributed" run on one process
        from repro.cli import main

        with pytest.raises(SystemExit, match="--tile"):
            main(["generate", "--cl", "20", "--n", "32", "--domain", "32",
                  "--backend", "dist"])

    def test_figure_rejects_dist_backend(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="job run"):
            main(["figure", "fig3", "--backend", "dist"])

    def test_worker_rejects_malformed_connect(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["dist", "worker", "--connect", "nocolon"])
