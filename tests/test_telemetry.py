"""Telemetry-plane tests: events, exposition, heartbeats, ``repro top``.

Layered like the subsystem: the JSONL event log alone (bounded queue,
levels, drop accounting), the Prometheus renderer as a pure function,
the :class:`RunTracker` state machine under a fake clock (no sockets,
no sleeps), heartbeat framing over socketpairs — then one live
2-worker coordinator run whose ``/metrics`` + ``/status`` + ``/health``
endpoints are scraped mid-flight, and the ``repro top`` renderer over
both a live endpoint and a bare store bitmap.

The obs contract is asserted throughout: telemetry on vs off never
changes the bytes, and a telemetry-off run needs none of this
machinery at all.

Set ``REPRO_EVENT_LOG_DIR`` to keep the live run's JSONL event log
(CI uploads it as an artifact on failure).
"""

from __future__ import annotations

import io
import json
import os
import socket
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.dist import Coordinator, RunSpec, generate_dist, protocol
from repro.dist.status import (
    EWMA_ALPHA,
    STALE_HEARTBEATS,
    STATUS_SCHEMA,
    RunTracker,
)
from repro.dist.worker import run_worker
from repro.io.store import SurfaceStore
from repro.jobs.faults import FaultSpec
from repro.obs.events import EventLog, new_run_id
from repro.obs.export import prometheus_name, prometheus_text
from repro.obs.httpd import StatusServer
from repro.parallel.executor import generate_tiled
from repro.parallel.tiles import TilePlan

pytestmark = pytest.mark.dist


def _get(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


# ---------------------------------------------------------------------------
# event log
# ---------------------------------------------------------------------------
class TestEventLog:
    def test_jsonl_lines_carry_run_and_clocks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, run_id="r-test") as log:
            log.emit("dist.worker.join", worker="w0")
            log.emit("dist.tile.failed", level="error", tile=3)
        lines = [json.loads(l) for l in
                 path.read_text().strip().splitlines()]
        assert [l["event"] for l in lines] == [
            "dist.worker.join", "dist.tile.failed"]
        for l in lines:
            assert l["run"] == "r-test"
            assert isinstance(l["ts"], float)
            assert isinstance(l["mono_ns"], int)
        assert lines[0]["lvl"] == "info" and lines[0]["worker"] == "w0"
        assert lines[1]["lvl"] == "error" and lines[1]["tile"] == 3
        # monotonic ordering within a process
        assert lines[0]["mono_ns"] <= lines[1]["mono_ns"]

    def test_level_threshold_filters(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, level="warn") as log:
            log.emit("a", level="debug")
            log.emit("b", level="info")
            log.emit("c", level="warn")
            log.emit("d", level="error")
        events = [json.loads(l)["event"]
                  for l in path.read_text().strip().splitlines()]
        assert events == ["c", "d"]

    def test_bad_levels_raise(self, tmp_path):
        with pytest.raises(ValueError, match="level"):
            EventLog(tmp_path / "e.jsonl", level="loud")
        with EventLog(tmp_path / "e.jsonl") as log:
            with pytest.raises(ValueError, match="level"):
                log.emit("x", level="loud")

    def test_unserialisable_field_degrades_to_repr(self):
        buf = io.StringIO()
        log = EventLog(buf, run_id="r-x")
        log.emit("weird", payload=object())
        log.close()
        rec = json.loads(buf.getvalue())
        assert rec["event"] == "weird"
        assert "object" in rec["payload"]

    def test_full_queue_drops_and_counts(self):
        class _BlockingFile:
            def __init__(self):
                self.entered = threading.Event()
                self.release = threading.Event()
                self.lines = []

            def write(self, s):
                if not self.release.is_set():
                    self.entered.set()
                    self.release.wait(5.0)
                self.lines.append(s)

            def flush(self):
                pass

        f = _BlockingFile()
        log = EventLog(f, run_id="r-q", max_queue=1)
        log.emit("first")                   # writer dequeues, blocks in write
        assert f.entered.wait(5.0)
        log.emit("second")                  # fills the 1-slot queue
        log.emit("third")                   # queue full: dropped, counted
        log.emit("fourth")
        assert log.dropped == 2
        f.release.set()
        log.close()
        events = [json.loads(s)["event"] for s in f.lines]
        assert events == ["first", "second"]

    def test_switchboard_off_is_noop_and_context_restores(self, tmp_path):
        assert obs.get_event_log() is None
        obs.event("nobody.listening", x=1)  # must not raise
        path = tmp_path / "sw.jsonl"
        with obs.event_logging(path, run_id="r-sw") as log:
            assert obs.event_log_enabled()
            assert obs.get_event_log() is log
            obs.event("heard")
        assert obs.get_event_log() is None
        assert json.loads(path.read_text())["event"] == "heard"

    def test_run_ids_are_short_and_unique(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(i.startswith("r-") and len(i) == 10 for i in ids)


# ---------------------------------------------------------------------------
# prometheus exposition
# ---------------------------------------------------------------------------
class TestPrometheusExport:
    def test_name_mapping(self):
        assert prometheus_name("dist.tiles_completed") == \
            "repro_dist_tiles_completed"
        assert prometheus_name("a-b.c", prefix="") == "a_b_c"
        assert prometheus_name("9lives", prefix="") == "_9lives"

    def test_counters_and_gauges_render_sorted(self):
        text = prometheus_text({
            "counters": {"dist.tiles_completed": 7},
            "gauges": {"active.regions": 3.5},
        })
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE repro_active_regions gauge" in lines
        assert "repro_active_regions 3.5" in lines
        assert "# TYPE repro_dist_tiles_completed counter" in lines
        assert "repro_dist_tiles_completed 7" in lines
        # sorted by metric name: gauge section precedes the counter's
        assert lines.index("repro_active_regions 3.5") < \
            lines.index("repro_dist_tiles_completed 7")

    def test_histogram_buckets_are_cumulative(self):
        m = obs.Metrics()
        for v in (0.5, 1.5, 99.0):
            m.observe("tile.seconds", v, bounds=(1.0, 2.0))
        text = prometheus_text(m.as_dict())
        assert 'repro_tile_seconds_bucket{le="1"} 1' in text
        assert 'repro_tile_seconds_bucket{le="2"} 2' in text
        assert 'repro_tile_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_tile_seconds_count 3" in text
        assert "repro_tile_seconds_sum 101" in text

    def test_extra_gauges_merge_in(self):
        text = prometheus_text(
            {"counters": {}, "gauges": {}},
            extra_gauges={"dist.status.progress": 0.25},
        )
        assert "repro_dist_status_progress 0.25" in text

    def test_empty_metrics_is_empty_text(self):
        assert prometheus_text({}) == ""


# ---------------------------------------------------------------------------
# run tracker (fake clock — no sleeps)
# ---------------------------------------------------------------------------
class TestRunTracker:
    def _tracker(self, heartbeat_s=1.0):
        clock = {"t": 0.0}
        tr = RunTracker(run_id="r-trk", heartbeat_s=heartbeat_s,
                        clock=lambda: clock["t"])
        return tr, clock

    def test_stale_after_missed_heartbeat_deadline(self):
        tr, clock = self._tracker(heartbeat_s=1.0)
        assert tr.stale_after_s == STALE_HEARTBEATS * 1.0
        tr.worker_connected("w0", 0.0)
        tr.heartbeat("w0", 0.0, tile=4, attempt=1)
        clock["t"] = 2.9                      # within 3 intervals: healthy
        assert tr.worker_rows()[0]["state"] == "busy"
        clock["t"] = 3.1                      # deadline missed
        assert tr.worker_rows()[0]["state"] == "stale"
        tr.heartbeat("w0", 3.2)               # next frame revives it
        clock["t"] = 3.3
        assert tr.worker_rows()[0]["state"] == "busy"

    def test_no_heartbeats_means_never_stale(self):
        tr, clock = self._tracker(heartbeat_s=None)
        assert tr.stale_after_s is None
        tr.worker_connected("w0", 0.0)
        clock["t"] = 1e6
        assert tr.worker_rows()[0]["state"] == "idle"
        tr.worker_gone("w0", clock["t"])
        assert tr.worker_rows()[0]["state"] == "gone"

    def test_ewma_throughput_and_eta(self):
        tr, clock = self._tracker()
        tr.worker_connected("w0", 0.0)
        for t in (1.0, 2.0, 3.0, 4.0):        # one completion per second
            tr.tile_completed("w0", t, seconds=0.5)
        assert tr.throughput() == pytest.approx(1.0)
        doc = tr.snapshot(tiles_total=10, tiles_done=4, leased=1,
                          lease_summary={}, now=4.0)
        assert doc["eta_s"] == pytest.approx(6.0)
        assert doc["throughput_tiles_per_s"] == pytest.approx(1.0)

    def test_duplicate_completions_do_not_inflate_rate(self):
        tr, _ = self._tracker()
        tr.tile_completed("w0", 1.0)
        tr.tile_completed("w1", 1.001, first=False)   # straggler duplicate
        assert tr.throughput() is None                # still only 1 real one
        tr.tile_completed("w0", 2.0)
        assert tr.throughput() == pytest.approx(1.0)

    def test_ewma_tracks_phase_change(self):
        tr, _ = self._tracker()
        tr.tile_completed("w0", 1.0)
        tr.tile_completed("w0", 2.0)          # 1 tile/s
        tr.tile_completed("w0", 2.5)          # burst: 2 tiles/s
        assert tr.throughput() == pytest.approx(
            EWMA_ALPHA * 2.0 + (1 - EWMA_ALPHA) * 1.0)

    def test_snapshot_schema_document(self):
        tr, clock = self._tracker(heartbeat_s=0.5)
        tr.worker_connected("w0", 0.0)
        tr.lease_granted("w0", 7, 1, 0.1)
        clock["t"] = 1.0
        doc = tr.snapshot(tiles_total=16, tiles_done=4, leased=1,
                          lease_summary={"granted": 5, "completed": 4})
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["run_id"] == "r-trk"
        assert doc["state"] == "running"
        assert doc["tiles"] == {"total": 16, "done": 4,
                                "pending": 12, "leased": 1}
        assert doc["progress"] == pytest.approx(0.25)
        assert doc["heartbeat_s"] == 0.5
        assert doc["lease"]["granted"] == 5
        (w,) = doc["workers"]
        assert w["name"] == "w0" and w["state"] == "busy"
        assert w["tile"] == 7 and w["attempt"] == 1

    def test_utilization_is_busy_fraction_capped(self):
        tr, clock = self._tracker()
        tr.worker_connected("w0", 0.0)
        tr.heartbeat("w0", 2.0, busy_s=1.0)
        clock["t"] = 4.0
        (w,) = tr.worker_rows()
        assert w["utilization"] == pytest.approx(0.25)
        tr.heartbeat("w0", 4.0, busy_s=1e9)   # claimed > alive: capped
        (w,) = tr.worker_rows()
        assert w["utilization"] == 1.0


# ---------------------------------------------------------------------------
# heartbeat framing
# ---------------------------------------------------------------------------
class TestHeartbeatFraming:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_heartbeat_round_trip(self):
        a, b = self._pair()
        with a, b:
            msg = {"type": "heartbeat", "tile": 12, "attempt": 2,
                   "tiles_done": 5, "busy_s": 3.25, "obs": None}
            protocol.send_json(a, msg)
            assert protocol.recv_json(b) == msg
            protocol.send_json(b, {"type": "ack"})
            assert protocol.recv_json(a) == {"type": "ack"}

    def test_heartbeat_with_obs_payload_round_trips(self):
        rec = obs.Recorder()
        rec.add("engine.tiles", 3)
        a, b = self._pair()
        with a, b:
            protocol.send_json(a, {"type": "heartbeat", "tile": 0,
                                   "attempt": 1, "tiles_done": 0,
                                   "busy_s": 0.0, "obs": rec.drain()})
            got = protocol.recv_json(b)
        assert got["obs"]["metrics"]["counters"]["engine.tiles"] == 3
        assert got["obs"]["max_spans"] == rec.max_spans

    def test_oversized_heartbeat_frame_refused(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 128)
        a, b = self._pair()
        with a, b:
            with pytest.raises(protocol.ProtocolError, match="refusing"):
                protocol.send_json(a, {"type": "heartbeat",
                                       "padding": "x" * 256})


# ---------------------------------------------------------------------------
# status server over canned snapshots
# ---------------------------------------------------------------------------
class TestStatusServer:
    def _server(self, doc=None, metrics=None, **kw):
        return StatusServer(
            lambda: doc if doc is not None else {"state": "running"},
            lambda: metrics if metrics is not None else
            {"counters": {"dist.heartbeats": 4}},
            **kw,
        )

    def test_health_status_metrics_and_404(self):
        doc = {"schema": STATUS_SCHEMA, "state": "running",
               "tiles": {"total": 4, "done": 1}}
        server = self._server(doc=doc)
        host, port = server.start()
        try:
            code, ctype, body = _get(f"http://{host}:{port}/health")
            assert code == 200 and json.loads(body) == {"ok": True}
            code, ctype, body = _get(f"http://{host}:{port}/status")
            assert code == 200 and ctype == "application/json"
            assert json.loads(body) == doc
            code, ctype, body = _get(f"http://{host}:{port}/metrics")
            assert code == 200 and "version=0.0.4" in ctype
            assert "repro_dist_heartbeats 4" in body.decode()
            with pytest.raises(urllib.request.HTTPError) as err:
                _get(f"http://{host}:{port}/nope")
            assert err.value.code == 404
        finally:
            server.stop()

    def test_extra_gauges_reach_metrics(self):
        server = self._server(
            metrics={"counters": {}},
            extra_gauges_fn=lambda: {"dist.status.progress": 0.5},
        )
        host, port = server.start()
        try:
            _, _, body = _get(f"http://{host}:{port}/metrics")
            assert "repro_dist_status_progress 0.5" in body.decode()
        finally:
            server.stop()

    def test_snapshot_exception_is_a_500_not_a_crash(self):
        def boom():
            raise RuntimeError("snapshot bug")

        server = StatusServer(boom, lambda: {})
        host, port = server.start()
        try:
            with pytest.raises(urllib.request.HTTPError) as err:
                _get(f"http://{host}:{port}/status")
            assert err.value.code == 500
            # the serve loop survives: the next request still answers
            code, _, _ = _get(f"http://{host}:{port}/health")
            assert code == 200
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# live coordinator run: endpoints + events + bit-identity
# ---------------------------------------------------------------------------
def _problem(n, tile, seed, cl=8.0):
    grid = Grid2D(nx=n, ny=n, lx=float(n), ly=float(n))
    spectrum = GaussianSpectrum(h=1.0, clx=cl, cly=cl)
    gen = ConvolutionGenerator(spectrum, grid, truncation=0.9999)
    rebuild = {
        "kind": "convolution",
        "spectrum": spectrum.to_dict(),
        "grid": {"nx": n, "ny": n, "lx": float(n), "ly": float(n)},
        "truncation": 0.9999,
        "engine": "auto",
        "dtype": "float64",
    }
    plan = TilePlan(total_nx=n, total_ny=n, tile_nx=tile, tile_ny=tile)
    return gen, rebuild, BlockNoise(seed=seed), plan, grid


def _store_for(tmp_path, name, n, tile, grid):
    return SurfaceStore.create(
        tmp_path / name, shape=(n, n), chunk=(tile, tile),
        dx=grid.dx, dy=grid.dy, meta={},
    )


class TestLiveTelemetry:
    def test_two_worker_run_exposes_endpoints_and_events(self, tmp_path):
        """The PR-8 acceptance drill: a live 2-worker run serves
        ``/metrics`` + ``/status`` + ``/health`` while computing, emits
        structured events, and the final document accounts for every
        tile."""
        gen, rebuild, noise, plan, grid = _problem(128, 32, seed=21)
        store = _store_for(tmp_path, "live", 128, 32, grid)
        # one delayed tile keeps the run in flight long enough that the
        # mid-run scrapes below observe real progress deterministically
        slow = FaultSpec(tile=15, attempt=1, kind="delay", delay_s=0.5)
        spec = RunSpec(rebuild=rebuild, noise_seed=21,
                       plan={"total_nx": 128, "total_ny": 128,
                             "tile_nx": 32, "tile_ny": 32},
                       store_path=str(store.path), access="shared",
                       faults=[slow.to_dict()])
        events_dir = os.environ.get("REPRO_EVENT_LOG_DIR", str(tmp_path))
        events_path = os.path.join(events_dir, "telemetry_events.jsonl")
        coord = Coordinator(spec, plan, store, lease_timeout_s=60.0,
                            heartbeat_s=0.1, status_port=0)
        last_doc = None
        try:
            with obs.event_logging(events_path, run_id=coord.run_id,
                                   level="debug"):
                host, port = coord.start()
                shost, sport = coord.status_address
                base = f"http://{shost}:{sport}"

                # before any worker: endpoints live, nothing done
                code, _, body = _get(base + "/health")
                assert code == 200 and json.loads(body) == {"ok": True}
                doc = json.loads(_get(base + "/status")[2])
                assert doc["schema"] == STATUS_SCHEMA
                assert doc["run_id"] == coord.run_id
                assert doc["state"] == "running"
                assert doc["tiles"] == {"total": 16, "done": 0,
                                        "pending": 16, "leased": 0}
                assert doc["heartbeat_s"] == 0.1
                metrics = _get(base + "/metrics")[2].decode()
                assert "repro_dist_status_tiles_total 16" in metrics
                assert metrics.endswith("\n")

                served = {}

                def _serve():
                    served["summary"] = coord.serve(timeout=120.0)

                st = threading.Thread(target=_serve, daemon=True)
                st.start()
                threads = [
                    threading.Thread(target=run_worker, args=(host, port),
                                     daemon=True)
                    for _ in range(2)
                ]
                for t in threads:
                    t.start()

                # scrape while the run is in flight; the delayed tile
                # holds the run open so mid-run progress is observable
                midrun = None
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    try:
                        doc = json.loads(_get(base + "/status")[2])
                    except OSError:
                        break  # run finished, server stopped
                    last_doc = doc
                    if (midrun is None and doc["state"] == "running"
                            and 1 <= doc["tiles"]["done"] < 16):
                        midrun = doc
                    if doc["tiles"]["done"] >= 16:
                        break
                    time.sleep(0.05)
                st.join(timeout=120.0)
                for t in threads:
                    t.join(timeout=60.0)
                assert not st.is_alive()
        finally:
            store.close()

        assert served["summary"]["lease"]["completed"] == 16
        # a mid-flight scrape saw a live, partially-complete run ...
        assert midrun is not None
        assert midrun["tiles"]["pending"] >= 1
        assert len(midrun["workers"]) == 2
        assert all(w["state"] in ("busy", "idle", "stale")
                   for w in midrun["workers"])
        # ... and the final observed document accounts for the progress
        assert last_doc is not None
        assert last_doc["tiles"]["total"] == 16
        assert last_doc["tiles"]["done"] >= midrun["tiles"]["done"]

        # the event log tells the run's story in order
        events = [json.loads(l)
                  for l in open(events_path, encoding="utf-8")]
        names = [e["event"] for e in events]
        assert "dist.run.start" in names
        assert names.count("dist.worker.join") == 2
        assert names.count("dist.tile.complete") == 16
        assert "dist.run.finish" in names
        assert all(e["run"] == coord.run_id for e in events)
        assert names.index("dist.run.start") < \
            names.index("dist.run.finish")

    def test_heights_bit_identical_telemetry_on_vs_off(self, tmp_path):
        """The obs contract on the dist path: heartbeats + status
        server may cost milliseconds, never bits."""
        gen, rebuild, noise, plan, grid = _problem(128, 32, seed=23)
        ref = generate_tiled(gen, noise, plan, backend="serial")

        store_off = _store_for(tmp_path, "off", 128, 32, grid)
        try:
            off = generate_dist(rebuild, noise, plan, store_off, workers=2)
            heights_off = np.array(off.heights)
        finally:
            store_off.close()

        store_on = _store_for(tmp_path, "on", 128, 32, grid)
        try:
            on = generate_dist(rebuild, noise, plan, store_on, workers=2,
                               heartbeat_s=0.05, status_port=0,
                               run_id="r-gate")
            heights_on = np.array(on.heights)
            dist_prov = on.provenance["dist"]
            assert dist_prov["run_id"] == "r-gate"
            assert dist_prov["heartbeat_s"] == 0.05
        finally:
            store_on.close()

        assert np.array_equal(heights_off, ref.heights)
        assert np.array_equal(heights_on, heights_off)

    def test_heartbeat_obs_totals_are_deterministic(self, tmp_path):
        """Worker drains ride both heartbeat and complete frames; the
        partition must never double- or under-count: merged tile
        counters equal the plan size exactly, run after run."""
        gen, rebuild, noise, plan, grid = _problem(96, 32, seed=25)
        totals = []
        for attempt in range(2):
            store = _store_for(tmp_path, f"det{attempt}", 96, 32, grid)
            try:
                with obs.recording() as rec:
                    generate_dist(rebuild, noise, plan, store, workers=2,
                                  heartbeat_s=0.05)
                    counters = rec.metrics.counters()
            finally:
                store.close()
            assert counters["dist.tiles_completed"] == len(plan)
            # worker-side counters arrive via drains split across
            # heartbeat and complete frames; the merged dispatch total
            # must still be exactly one per tile
            dispatch = sum(v for k, v in counters.items()
                           if k.startswith("conv.dispatch."))
            totals.append((counters["dist.tiles_completed"], dispatch))
        assert totals[0] == totals[1]
        assert totals[0][1] == len(plan)


# ---------------------------------------------------------------------------
# repro top
# ---------------------------------------------------------------------------
class TestTopCommand:
    def test_top_once_against_live_endpoint(self, capsys):
        doc = {
            "schema": STATUS_SCHEMA, "run_id": "r-top", "state": "running",
            "elapsed_s": 12.5, "progress": 0.25,
            "tiles": {"total": 16, "done": 4, "pending": 12, "leased": 2},
            "throughput_tiles_per_s": 2.0, "eta_s": 6.0,
            "lease": {"granted": 6, "completed": 4, "duplicates": 0,
                      "expired": 0, "worker_releases": 0, "failures": 0},
            "heartbeat_s": 0.5,
            "workers": [
                {"name": "w0", "state": "busy", "tile": 7, "attempt": 1,
                 "tiles_done": 2, "busy_s": 5.0, "utilization": 0.4,
                 "last_seen_age_s": 0.1},
                {"name": "w1", "state": "idle", "tile": None,
                 "attempt": None, "tiles_done": 2, "busy_s": 4.0,
                 "utilization": 0.32, "last_seen_age_s": 0.2},
            ],
        }
        server = StatusServer(lambda: doc, lambda: {})
        host, port = server.start()
        try:
            rc = cli_main(["top", "--connect", f"{host}:{port}", "--once"])
        finally:
            server.stop()
        assert rc == 0
        out = capsys.readouterr().out
        assert "run r-top" in out
        assert "tiles 4/16 (25.0%)" in out
        assert "eta 6s" in out
        assert "WORKER" in out and "w0" in out and "w1" in out
        assert "busy" in out and "idle" in out

    def test_top_json_mode_emits_the_document(self, capsys):
        doc = {"schema": STATUS_SCHEMA, "state": "complete",
               "tiles": {"total": 2, "done": 2}}
        server = StatusServer(lambda: doc, lambda: {})
        host, port = server.start()
        try:
            rc = cli_main(["top", "--connect", f"{host}:{port}",
                           "--once", "--json"])
        finally:
            server.stop()
        assert rc == 0
        assert json.loads(capsys.readouterr().out) == doc

    def test_top_store_fallback_reads_the_bitmap(self, tmp_path, capsys):
        gen, rebuild, noise, plan, grid = _problem(64, 32, seed=27)
        store = _store_for(tmp_path, "topstore", 64, 32, grid)
        store.close()
        rc = cli_main(["top", "--store", str(tmp_path / "topstore"),
                       "--once", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["source"] == "store"
        assert doc["state"] == "running"
        assert doc["tiles"] == {"total": 4, "done": 0,
                                "pending": 4, "leased": None}

    def test_top_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            cli_main(["top", "--once"])
        with pytest.raises(SystemExit, match="exactly one"):
            cli_main(["top", "--connect", "h:1", "--store",
                      str(tmp_path), "--once"])

    def test_top_unreachable_endpoint_fails_loud(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            cli_main(["top", "--connect", "127.0.0.1:1", "--once"])
