"""Integration tests: the paper's Figures 1-4 at reduced scale.

Each figure pipeline runs end-to-end on a small grid and verifies the
*reproduction criteria* (region statistics realise their targets) that
the full-size benches assert quantitatively.
"""

import numpy as np
import pytest

from repro.figures import (
    FIGURES,
    default_grid,
    figure1_layout,
    figure2_layout,
    figure3_layout,
    figure4_layout,
    figure_layout,
    figure_surface,
)


class TestLayoutBuilders:
    def test_all_figures_buildable(self):
        for name in FIGURES:
            assert figure_layout(name) is not None

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            figure_layout("fig9")

    def test_fig1_parameters(self):
        lat = figure1_layout()
        # quadrant lattice: 2x2, all Gaussian
        assert lat.n_plates == (2, 2)
        specs = [s for row in lat.spectra_grid for s in row]
        assert {s.kind for s in specs} == {"gaussian"}
        assert sorted(s.h for s in specs) == [1.0, 1.5, 1.5, 2.0]
        assert sorted(s.clx for s in specs) == [40.0, 60.0, 60.0, 80.0]

    def test_fig2_spectrum_families(self):
        lat = figure2_layout()
        specs = [s for row in lat.spectra_grid for s in row]
        kinds = sorted(s.kind for s in specs)
        assert kinds == ["exponential", "gaussian", "power_law", "power_law"]
        orders = sorted(s.order for s in specs if s.kind == "power_law")
        assert orders == [2.0, 3.0]

    def test_fig3_parameters(self):
        lay = figure3_layout()
        assert lay.background.kind == "gaussian"
        assert lay.background.h == 1.0
        (patch,) = lay.patches
        assert patch.spectrum.kind == "exponential"
        assert patch.spectrum.h == 0.2
        assert patch.half_width == 100.0
        assert patch.region.radius == 500.0

    def test_fig4_parameters(self):
        layout = figure4_layout()
        assert len(layout.points) == 10
        hs = [p.spectrum.h for p in layout.points]
        assert hs == [1.0] * 3 + [1.5] * 3 + [2.0] * 3 + [0.5]
        assert layout.points[-1].spectrum.kind == "exponential"

    def test_domain_scaling(self):
        lat_full = figure1_layout(domain=1024.0)
        lat_half = figure1_layout(domain=512.0)
        assert lat_half.spectra_grid[0][0].clx == pytest.approx(
            lat_full.spectra_grid[0][0].clx / 2.0
        )


class TestFigureSurfaces:
    @pytest.mark.parametrize("name", FIGURES)
    def test_generation_runs(self, name):
        s = figure_surface(name, n=96, seed=1)
        assert s.shape == (96, 96)
        assert s.provenance["figure"] == name
        assert np.all(np.isfinite(s.heights))

    def test_fig1_quadrant_statistics(self):
        s = figure_surface("fig1", n=192, seed=3)
        n = 192
        q = n // 2
        m = n // 8  # margin away from transitions
        # quadrant slabs (x, y): Q1 high-x high-y h=1.0; Q3 low-x low-y h=2.0
        q1 = s.heights[q + m :, q + m :]
        q3 = s.heights[: q - m, : q - m]
        assert q1.std() == pytest.approx(1.0, rel=0.45)
        assert q3.std() == pytest.approx(2.0, rel=0.45)
        assert q3.std() > q1.std()

    def test_fig3_pond_statistics(self):
        s = figure_surface("fig3", n=192, seed=4)
        grid = s.grid
        gx, gy = grid.meshgrid()
        r = np.hypot(gx - grid.lx / 2, gy - grid.ly / 2)
        pond = s.heights[r < 0.3 * grid.lx]
        field = s.heights[r > 0.55 * grid.lx]
        assert pond.std() < 0.5 * field.std()

    def test_seed_determinism(self):
        a = figure_surface("fig2", n=64, seed=5)
        b = figure_surface("fig2", n=64, seed=5)
        assert np.array_equal(a.heights, b.heights)

    def test_default_grid(self):
        g = default_grid(256)
        assert g.shape == (256, 256)
        assert g.lx == 1024.0
