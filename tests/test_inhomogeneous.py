"""Tests for the inhomogeneous generator (paper Section 3)."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.inhomogeneous import (
    InhomogeneousGenerator,
    blend_fields,
    blend_reference,
    kernel_stack,
)
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.fields.parameter_map import LayeredLayout, PlateLattice, RegionSpec
from repro.fields.regions import Circle


@pytest.fixture
def s_smooth():
    return GaussianSpectrum(h=0.3, clx=12.0, cly=12.0)


@pytest.fixture
def s_rough():
    return ExponentialSpectrum(h=2.0, clx=8.0, cly=8.0)


@pytest.fixture
def grid32():
    return Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)


@pytest.fixture
def quad_layout(s_smooth, s_rough):
    return PlateLattice.quadrants(
        128.0, 128.0, s_smooth, s_rough, s_smooth, s_rough, half_width=10.0
    )


class TestBlendFields:
    def test_simple_blend(self):
        w = np.stack([np.full((2, 2), 0.25), np.full((2, 2), 0.75)])
        f = [np.ones((2, 2)), 2 * np.ones((2, 2))]
        out = blend_fields(w, f)
        assert np.allclose(out, 0.25 + 1.5)

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            blend_fields(np.ones((2, 2, 2)), [np.ones((2, 2))])


class TestFastVsReference:
    def test_plate_blend_equals_per_point_kernel(self, quad_layout, grid32):
        """The linearity argument: fast blend == literal eqn (37)."""
        gen = InhomogeneousGenerator(quad_layout, grid32, truncation=(5, 5))
        x = standard_normal_field(grid32.shape, seed=21)
        fast = gen.generate(noise=x).heights
        wm = gen.weight_map
        ks = kernel_stack(wm.spectra, grid32, 5, 5)
        ref = blend_reference(wm, ks, x)
        assert np.allclose(fast, ref, atol=1e-10)

    def test_reference_requires_common_support(self, s_smooth, s_rough, grid32):
        from repro.core.weights import build_kernel, truncate_kernel

        wm = LayeredLayout(s_smooth, []).weight_map(grid32)
        k1 = truncate_kernel(build_kernel(s_smooth, grid32), 3, 3)
        k2 = truncate_kernel(build_kernel(s_rough, grid32), 4, 4)
        with pytest.raises(ValueError):
            blend_reference(wm, [k1, k2], np.zeros(grid32.shape))


class TestGenerate:
    def test_surface_shape_and_provenance(self, quad_layout, grid32):
        gen = InhomogeneousGenerator(quad_layout, grid32, truncation=0.99)
        s = gen.generate(seed=5)
        assert s.shape == grid32.shape
        assert s.provenance["method"] == "inhomogeneous-convolution"
        assert len(s.provenance["spectra"]) == gen.weight_map.n_regions

    def test_noise_shape_validation(self, quad_layout, grid32):
        gen = InhomogeneousGenerator(quad_layout, grid32)
        with pytest.raises(ValueError):
            gen.generate(noise=np.zeros((4, 4)))

    def test_regions_realise_targets(self, s_smooth, s_rough):
        """Headline check: each half realises its own h."""
        grid = Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)
        lat = PlateLattice(
            [0.0, 512.0, 1024.0], [0.0, 1024.0],
            [[s_smooth], [s_rough]], half_width=24.0,
        )
        gen = InhomogeneousGenerator(lat, grid, truncation=0.999)
        s = gen.generate(seed=7)
        left = s.heights[: 100, :]    # deep inside smooth half
        right = s.heights[156:, :]    # deep inside rough half
        assert left.std() == pytest.approx(s_smooth.h, rel=0.3)
        assert right.std() == pytest.approx(s_rough.h, rel=0.3)
        assert right.std() > 3.0 * left.std()

    def test_continuity_across_transition(self, s_smooth, s_rough):
        """No seams: finite differences across the boundary stay bounded."""
        grid = Grid2D(nx=128, ny=64, lx=512.0, ly=256.0)
        lat = PlateLattice(
            [0.0, 256.0, 512.0], [0.0, 256.0],
            [[s_smooth], [s_rough]], half_width=40.0,
        )
        s = InhomogeneousGenerator(lat, grid, truncation=0.999).generate(seed=3)
        dx_steps = np.abs(np.diff(s.heights, axis=0))
        # steps at the boundary column not wildly larger than elsewhere in
        # the rough half
        boundary = dx_steps[60:68, :].max()
        interior = dx_steps[96:, :].max()
        assert boundary < 2.5 * interior

    def test_shared_noise_across_regions(self, s_smooth, grid32):
        # blending a layout of identical spectra must reduce exactly to
        # the homogeneous surface (weights sum to 1)
        lat = PlateLattice.quadrants(
            128.0, 128.0, s_smooth, s_smooth, s_smooth, s_smooth, half_width=10.0
        )
        gen = InhomogeneousGenerator(lat, grid32, truncation=(5, 5))
        x = standard_normal_field(grid32.shape, seed=2)
        inhom = gen.generate(noise=x).heights
        from repro.core.convolution import convolve_spatial
        from repro.core.weights import build_kernel, truncate_kernel

        kern = truncate_kernel(build_kernel(s_smooth, grid32), 5, 5)
        hom = convolve_spatial(kern, x, boundary="wrap")
        assert np.allclose(inhom, hom, atol=1e-10)


class TestCircularRegion:
    def test_fig3_style_pond_is_smoother(self):
        grid = Grid2D(nx=192, ny=192, lx=768.0, ly=768.0)
        pond = ExponentialSpectrum(h=0.2, clx=40.0, cly=40.0)
        field = GaussianSpectrum(h=1.0, clx=40.0, cly=40.0)
        lay = LayeredLayout(
            field,
            [RegionSpec(Circle(384.0, 384.0, 200.0), pond, half_width=60.0)],
        )
        s = InhomogeneousGenerator(lay, grid, truncation=0.999).generate(seed=9)
        gx, gy = grid.meshgrid()
        r = np.hypot(gx - 384.0, gy - 384.0)
        inside = s.heights[r < 120.0]
        outside = s.heights[r > 300.0]
        assert inside.std() == pytest.approx(0.2, rel=0.4)
        assert outside.std() == pytest.approx(1.0, rel=0.4)


class TestWindowedGeneration:
    def test_window_matches_origin_window(self, quad_layout, grid32):
        gen = InhomogeneousGenerator(quad_layout, grid32, truncation=(5, 5))
        bn = BlockNoise(seed=31, block=32)
        big = gen.generate_window(bn, 0, 0, 32, 32)
        sub = gen.generate_window(bn, 8, 8, 12, 12)
        assert np.allclose(
            big.heights[8:20, 8:20], sub.heights, atol=1e-10
        )

    def test_window_origin_coordinates(self, quad_layout, grid32):
        gen = InhomogeneousGenerator(quad_layout, grid32, truncation=(5, 5))
        bn = BlockNoise(seed=31)
        w = gen.generate_window(bn, 4, 6, 8, 8)
        assert w.origin == (4 * grid32.dx, 6 * grid32.dy)

    def test_window_sees_correct_region_parameters(self, s_smooth, s_rough):
        # a window deep inside the rough half must have rough statistics
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        lat = PlateLattice(
            [0.0, 256.0, 512.0], [0.0, 512.0],
            [[s_smooth], [s_rough]], half_width=16.0,
        )
        gen = InhomogeneousGenerator(lat, grid, truncation=0.999)
        bn = BlockNoise(seed=8)
        w = gen.generate_window(bn, 96, 0, 32, 128)  # x in [384, 512)
        assert w.height_std() == pytest.approx(s_rough.h, rel=0.4)
