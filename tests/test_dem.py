"""Tests for DEM roughness enhancement."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.core.surface import Surface
from repro.fields.dem import enhance_dem, highpass_field, upsample_bilinear
from repro.stats.spectral import periodogram, radial_spectrum


@pytest.fixture
def coarse_dem(rng):
    # a smooth synthetic "measured" terrain: one broad hill + tilt
    grid = Grid2D(nx=32, ny=32, lx=1024.0, ly=1024.0)  # dx = 32
    gx, gy = grid.meshgrid()
    h = (
        40.0 * np.exp(-(((gx - 512) / 200) ** 2 + ((gy - 512) / 250) ** 2))
        + 0.01 * gx
    )
    return Surface(heights=h, grid=grid, provenance={"source": "test-dem"})


class TestUpsample:
    def test_identity_factor(self, coarse_dem):
        up = upsample_bilinear(coarse_dem, 1)
        assert np.array_equal(up.heights, coarse_dem.heights)

    def test_original_samples_preserved(self, coarse_dem):
        up = upsample_bilinear(coarse_dem, 4)
        assert up.shape == (128, 128)
        assert np.allclose(up.heights[::4, ::4], coarse_dem.heights)

    def test_spacing_and_extent(self, coarse_dem):
        up = upsample_bilinear(coarse_dem, 4)
        assert up.grid.dx == pytest.approx(coarse_dem.grid.dx / 4)
        assert up.grid.lx == coarse_dem.grid.lx

    def test_interpolated_between_neighbours(self, coarse_dem):
        up = upsample_bilinear(coarse_dem, 2)
        a = coarse_dem.heights[3, 5]
        b = coarse_dem.heights[4, 5]
        assert up.heights[7, 10] == pytest.approx(0.5 * (a + b))

    def test_validation(self, coarse_dem):
        with pytest.raises(ValueError):
            upsample_bilinear(coarse_dem, 0)


class TestHighpass:
    def test_removes_dc_and_low_k(self, rng):
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        gx, _ = grid.meshgrid()
        low = np.sin(2 * np.pi * gx / 512.0) + 5.0  # K = 0.0123 + DC
        out = highpass_field(low, grid, k_cut=0.1)
        assert np.max(np.abs(out)) < 1e-10

    def test_passes_high_k(self, grid):
        gx, _ = grid.meshgrid()
        k_high = 2 * np.pi * 16 / grid.lx
        wave = np.sin(k_high * gx)
        out = highpass_field(wave, grid, k_cut=k_high / 2)
        assert np.allclose(out, wave, atol=1e-10)

    def test_rolloff_partial(self, grid):
        gx, _ = grid.meshgrid()
        k_mid = 2 * np.pi * 8 / grid.lx
        wave = np.sin(k_mid * gx)
        out = highpass_field(wave, grid, k_cut=k_mid * 1.1,
                             rolloff_fraction=0.5)
        ratio = out.std() / wave.std()
        assert 0.05 < ratio < 0.95

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            highpass_field(np.zeros(grid.shape), grid, k_cut=0.0)
        with pytest.raises(ValueError):
            highpass_field(np.zeros((3, 3)), grid, k_cut=1.0)


class TestEnhanceDem:
    def test_dem_preserved_at_coarse_samples(self, coarse_dem):
        # the high-passed synthetic has (near-)zero content at the DEM's
        # resolved scales, but any pointwise residue is tiny relative to
        # the added texture
        spec = ExponentialSpectrum(h=0.5, clx=20.0, cly=20.0)
        out = enhance_dem(coarse_dem, spec, factor=8, seed=3)
        assert out.shape == (256, 256)
        coarse_vals = out.heights[::8, ::8]
        # DEM shape dominates: correlation with the original ~ 1
        c = np.corrcoef(coarse_vals.ravel(),
                        coarse_dem.heights.ravel())[0, 1]
        assert c > 0.999

    def test_added_energy_lives_above_dem_nyquist(self, coarse_dem):
        spec = ExponentialSpectrum(h=0.5, clx=20.0, cly=20.0)
        out = enhance_dem(coarse_dem, spec, factor=8, seed=3)
        base = upsample_bilinear(coarse_dem, 8)
        detail = out.heights - base.heights
        est = periodogram(detail, out.grid)
        k, w = radial_spectrum(est, out.grid, n_bins=48)
        k_cut = np.pi / coarse_dem.grid.dx
        low = w[k < 0.5 * k_cut].sum()
        high = w[k > k_cut].sum()
        assert high > 50.0 * max(low, 1e-30)

    def test_texture_statistics_in_enhanced_band(self, coarse_dem):
        # the detail field's variance is the spectrum's above-cut energy
        spec = ExponentialSpectrum(h=0.5, clx=10.0, cly=10.0)
        out = enhance_dem(coarse_dem, spec, factor=8, seed=4)
        base = upsample_bilinear(coarse_dem, 8)
        detail = out.heights - base.heights
        # rough surfaces with cl ~ 10 and dx_dem = 32: most energy is
        # sub-grid, so the detail carries a sizeable share of h^2
        assert 0.05 < detail.var() < spec.variance

    def test_determinism(self, coarse_dem):
        spec = GaussianSpectrum(h=0.3, clx=15.0, cly=15.0)
        a = enhance_dem(coarse_dem, spec, factor=4, seed=9)
        b = enhance_dem(coarse_dem, spec, factor=4, seed=9)
        assert np.array_equal(a.heights, b.heights)

    def test_validation(self, coarse_dem):
        with pytest.raises(ValueError):
            enhance_dem(coarse_dem, GaussianSpectrum(h=1, clx=5, cly=5),
                        factor=1)

    def test_provenance_chain(self, coarse_dem):
        spec = GaussianSpectrum(h=0.3, clx=15.0, cly=15.0)
        out = enhance_dem(coarse_dem, spec, factor=4, seed=9)
        assert out.provenance["method"] == "dem-enhancement"
        assert out.provenance["dem_provenance"]["source"] == "test-dem"
