"""Backend-seam parity: the numpy backend must be invisible.

The :mod:`repro.core.backend` seam exists so accelerator backends can be
registered later; its contract is that the default ``"numpy"`` backend
is *bit-identical* to the direct ``scipy.fft`` calls the engine made
before the seam existed — any drift would silently invalidate every
cross-engine equivalence bound and cached-plan result in the test
suite.  Property-tested here across odd/even/degenerate shapes and both
engine precisions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import fft as sfft

from repro.core.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)

# Odd, even, and degenerate (size-1) axes, kept small so the hypothesis
# sweep stays fast; FFT code paths differ by parity, not magnitude.
_axes = st.integers(min_value=1, max_value=13)
_pad = st.integers(min_value=0, max_value=8)
_dtypes = st.sampled_from([np.float64, np.float32])


def _field(nx, ny, dtype, seed=0):
    rng = np.random.default_rng(seed + 1000 * nx + ny)
    return rng.standard_normal((nx, ny)).astype(dtype)


@settings(max_examples=60, deadline=None)
@given(nx=_axes, ny=_axes, px=_pad, py=_pad, dtype=_dtypes)
def test_rfft2_bit_identical_to_scipy(nx, ny, px, py, dtype):
    """Forward transform (with zero-padding to ``s``) matches scipy
    bit-for-bit, including the complex dtype."""
    xp = get_backend("numpy")
    a = _field(nx, ny, dtype)
    s = (nx + px, ny + py)
    ours = xp.rfft2(a, s=s)
    ref = sfft.rfft2(a, s=s)
    assert ours.dtype == ref.dtype
    np.testing.assert_array_equal(ours, ref)


@settings(max_examples=60, deadline=None)
@given(nx=_axes, ny=_axes, px=_pad, py=_pad, dtype=_dtypes)
def test_round_trip_bit_identical_to_scipy(nx, ny, px, py, dtype):
    """rfft2 -> irfft2 round trip equals the direct scipy round trip
    bit-for-bit (same pocketfft path, so identical rounding)."""
    xp = get_backend("numpy")
    a = _field(nx, ny, dtype, seed=7)
    s = (nx + px, ny + py)
    ours = xp.irfft2(xp.rfft2(a, s=s), s=s)
    ref = sfft.irfft2(sfft.rfft2(a, s=s), s=s)
    assert ours.dtype == ref.dtype == np.dtype(dtype)
    np.testing.assert_array_equal(ours, ref)


@settings(max_examples=30, deadline=None)
@given(nx=_axes, ny=_axes, dtype=_dtypes)
def test_single_precision_preserved(nx, ny, dtype):
    """The backend never up-casts: float32 in -> complex64 spectra ->
    float32 out (the reason it delegates to scipy.fft, not numpy.fft)."""
    xp = get_backend("numpy")
    a = _field(nx, ny, dtype, seed=3)
    spec = xp.rfft2(a)
    expected_complex = np.complex64 if dtype == np.float32 else np.complex128
    assert spec.dtype == expected_complex
    assert xp.irfft2(spec, s=(nx, ny)).dtype == np.dtype(dtype)


def test_empty_and_asarray_semantics():
    xp = get_backend("numpy")
    out = xp.empty((3, 5), np.float32)
    assert out.shape == (3, 5) and out.dtype == np.float32
    a = np.arange(6, dtype=np.float64).reshape(2, 3)
    same = xp.asarray(a)
    assert same is a  # no-copy when dtype already matches
    cast = xp.asarray(a, dtype=np.float32)
    assert cast.dtype == np.float32


def test_get_backend_default_and_idempotence():
    xp = get_backend()
    assert isinstance(xp, NumpyBackend)
    assert xp.name == "numpy"
    assert get_backend(xp) is xp  # already-resolved instances pass through


def test_get_backend_rejects_unknown_names_helpfully():
    with pytest.raises(ValueError) as err:
        get_backend("cupy")
    msg = str(err.value)
    assert "cupy" in msg
    assert "numpy" in msg  # lists what *is* registered
    assert "register_backend" in msg  # and how to add one


def test_register_backend_rejects_duplicates_and_anonymous():
    class Fake(ArrayBackend):
        name = "numpy"

    with pytest.raises(ValueError, match="already registered"):
        register_backend(Fake())

    class Nameless(ArrayBackend):
        name = ""

    with pytest.raises(ValueError, match="name"):
        register_backend(Nameless())


def test_register_backend_replace_roundtrip():
    """A custom backend can be registered, resolved, and cleaned up."""
    class Probe(NumpyBackend):
        name = "probe-backend"

    probe = Probe()
    register_backend(probe)
    try:
        assert get_backend("probe-backend") is probe
        assert "probe-backend" in available_backends()
        # replacing requires the explicit flag
        with pytest.raises(ValueError):
            register_backend(Probe())
        register_backend(Probe(), replace=True)
    finally:
        # restore a clean registry for other tests
        from repro.core import backend as backend_mod

        with backend_mod._REGISTRY_LOCK:
            backend_mod._REGISTRY.pop("probe-backend", None)
    assert "probe-backend" not in available_backends()
