"""Tests for 1D profile generation."""

import numpy as np
import pytest
from scipy import integrate

from repro.core.oned import (
    BlockNoise1D,
    Exponential1D,
    Gaussian1D,
    Matern1D,
    ProfileGenerator,
    build_kernel_1d,
    marginal_of_2d,
    weight_vector,
)
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum


class TestSpectra1D:
    @pytest.mark.parametrize("spec", [
        Gaussian1D(h=1.5, cl=10.0),
        Exponential1D(h=1.0, cl=5.0),
        Matern1D(h=2.0, cl=8.0, order=2.0),
        Matern1D(h=1.0, cl=8.0, order=5.0),
    ])
    def test_spectrum_integrates_to_variance(self, spec):
        val, _ = integrate.quad(lambda k: float(spec.spectrum(np.asarray(k))),
                                -2000.0 / spec.cl, 2000.0 / spec.cl,
                                limit=400)
        assert val == pytest.approx(spec.variance, rel=2e-3)

    @pytest.mark.parametrize("spec", [
        Gaussian1D(h=1.5, cl=10.0),
        Exponential1D(h=1.0, cl=5.0),
        Matern1D(h=2.0, cl=8.0, order=3.0),
    ])
    def test_acf_peak_and_decay(self, spec):
        assert float(spec.autocorrelation(np.array(0.0))) == pytest.approx(
            spec.variance, rel=1e-9
        )
        assert float(spec.autocorrelation(np.array(20.0 * spec.cl))) < \
            0.01 * spec.variance

    def test_acf_transform_pair(self):
        # numerical cosine transform of W1 equals rho at a few lags
        spec = Matern1D(h=1.0, cl=6.0, order=2.5)
        for x in (2.0, 6.0, 12.0):
            val, _ = integrate.quad(
                lambda k: float(spec.spectrum(np.asarray(k))) * np.cos(k * x),
                -600.0 / spec.cl, 600.0 / spec.cl, limit=800,
            )
            assert val == pytest.approx(
                float(spec.autocorrelation(np.array(x))), abs=5e-3
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            Gaussian1D(h=-1.0, cl=1.0)
        with pytest.raises(ValueError):
            Exponential1D(h=1.0, cl=0.0)
        with pytest.raises(ValueError):
            Matern1D(h=1.0, cl=1.0, order=0.5)


class TestMarginal:
    def test_gaussian_marginal_is_gaussian_1d(self):
        # exact identity: Ky-marginal of a 2D Gaussian = 1D Gaussian
        g2 = GaussianSpectrum(h=1.0, clx=10.0, cly=14.0)
        m = marginal_of_2d(g2)
        g1 = Gaussian1D(h=1.0, cl=10.0)
        k = np.array([0.0, 0.05, 0.2, 0.5])
        assert np.allclose(m.spectrum(k), g1.spectrum(k), rtol=1e-6)
        assert m.h == pytest.approx(1.0, rel=1e-6)

    def test_marginal_keeps_variance(self):
        e2 = ExponentialSpectrum(h=2.0, clx=8.0, cly=8.0)
        m = marginal_of_2d(e2)
        assert m.h == pytest.approx(2.0, rel=0.02)

    def test_marginal_acf(self):
        g2 = GaussianSpectrum(h=1.0, clx=10.0, cly=10.0)
        m = marginal_of_2d(g2)
        # profile ACF equals the 2D ACF along the cut: h^2 exp(-(x/cl)^2)
        assert float(m.autocorrelation(10.0)) == pytest.approx(
            np.exp(-1.0), abs=1e-4
        )


class TestWeightsAndKernel:
    def test_weight_vector_sum(self):
        spec = Gaussian1D(h=2.0, cl=10.0)
        w = weight_vector(spec, 1024, 1024.0)
        assert w.sum() == pytest.approx(4.0, rel=1e-6)

    def test_weight_vector_even(self):
        w = weight_vector(Exponential1D(h=1.0, cl=7.0), 64, 128.0)
        assert np.allclose(w[1:], w[1:][::-1])

    def test_weight_vector_validation(self):
        with pytest.raises(ValueError):
            weight_vector(Gaussian1D(h=1, cl=1), 0, 1.0)
        with pytest.raises(ValueError):
            weight_vector(Gaussian1D(h=1, cl=1), 8, -1.0)

    def test_kernel_energy(self):
        k = build_kernel_1d(Gaussian1D(h=1.5, cl=10.0), 512, 512.0)
        assert k.energy == pytest.approx(2.25, rel=1e-6)

    def test_truncation_preserves_energy(self):
        full = build_kernel_1d(Gaussian1D(h=1.0, cl=10.0), 512, 512.0)
        t = build_kernel_1d(Gaussian1D(h=1.0, cl=10.0), 512, 512.0,
                            truncation=0.99)
        assert t.size < full.size
        assert t.energy == pytest.approx(full.energy, rel=1e-9)

    def test_truncation_validation(self):
        with pytest.raises(ValueError):
            build_kernel_1d(Gaussian1D(h=1, cl=10), 64, 64.0, truncation=1.5)


class TestBlockNoise1D:
    def test_overlap_consistency(self):
        bn = BlockNoise1D(seed=3, block=64)
        big = bn.window(-10, 200)
        small = bn.window(40, 30)
        assert np.array_equal(big[50:80], small)

    def test_determinism_and_stats(self):
        bn = BlockNoise1D(seed=5)
        a = bn.window(0, 100_000)
        assert np.array_equal(a, BlockNoise1D(seed=5).window(0, 100_000))
        assert a.std() == pytest.approx(1.0, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockNoise1D(seed=-1)
        with pytest.raises(ValueError):
            BlockNoise1D(seed=1, block=0)
        with pytest.raises(ValueError):
            BlockNoise1D(seed=1).window(0, -1)


class TestProfileGenerator:
    @pytest.mark.parametrize("spec", [
        Gaussian1D(h=1.0, cl=12.0),
        Exponential1D(h=2.0, cl=6.0),
        Matern1D(h=1.0, cl=10.0, order=2.0),
    ])
    def test_profile_statistics(self, spec):
        gen = ProfileGenerator(spec, 8192, 8192.0)
        f = gen.generate(seed=1)
        assert f.shape == (8192,)
        assert f.std() == pytest.approx(spec.h, rel=0.15)

    def test_acf_shape_recovered(self):
        spec = Gaussian1D(h=1.0, cl=16.0)
        gen = ProfileGenerator(spec, 16384, 16384.0)
        f = gen.generate(seed=2)
        f = f - f.mean()
        # circular ACF at lag cl: rho ~ h^2/e
        n = f.size
        acf = np.fft.ifft(np.abs(np.fft.fft(f)) ** 2).real / n
        assert acf[16] / acf[0] == pytest.approx(np.exp(-1.0), abs=0.08)

    def test_window_overlap_consistency(self):
        gen = ProfileGenerator(Gaussian1D(h=1.0, cl=10.0), 1024, 1024.0)
        bn = BlockNoise1D(seed=7)
        a = gen.generate_window(bn, 0, 400)
        b = gen.generate_window(bn, 150, 100)
        assert np.allclose(a[150:250], b, atol=1e-12)

    def test_noise_shape_validation(self):
        gen = ProfileGenerator(Gaussian1D(h=1.0, cl=10.0), 256, 256.0)
        with pytest.raises(ValueError):
            gen.generate(noise=np.zeros(100))

    def test_matched_noise_determinism(self):
        gen = ProfileGenerator(Exponential1D(h=1.0, cl=5.0), 512, 512.0)
        assert np.array_equal(gen.generate(seed=3), gen.generate(seed=3))
