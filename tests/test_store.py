"""Differential & fault tests for the out-of-core store (repro.io.store).

The store's contract: store-backed generation is **bit-identical** to
the in-memory path (same plan, any backend), the chunk bitmap only
records durably-written chunks (so resume never double-writes or trusts
unwritten data), torn on-disk state fails loudly as
:class:`StoreCorrupt`, and peak RSS stays far below the output size —
the paper's "arbitrarily large surface" claim made operational.
"""

import json
import shutil
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.io.store import (
    FORMAT_VERSION,
    StoreCorrupt,
    SurfaceStore,
    stream_to_store,
)
from repro.jobs import (
    FaultPlan,
    FaultSpec,
    PoolRespawnLimit,
    RetryPolicy,
    TileFailedError,
    resume,
    run_strips,
    run_tiled,
    status,
)
from repro.parallel import TilePlan, generate_tiled

pytestmark = pytest.mark.store

N = 96
TILE = 48

FAST = RetryPolicy(backoff_base=0.0)


def _gen():
    return ConvolutionGenerator(
        GaussianSpectrum(h=1.0, clx=10.0, cly=10.0),
        Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)),
    )


@pytest.fixture(scope="module")
def gen():
    return _gen()


@pytest.fixture(scope="module")
def noise():
    return BlockNoise(seed=11)


@pytest.fixture(scope="module")
def plan():
    return TilePlan(total_nx=N, total_ny=N, tile_nx=TILE, tile_ny=TILE)


@pytest.fixture(scope="module")
def reference(gen, noise, plan):
    """The in-memory serial run every store-backed run must reproduce."""
    return generate_tiled(gen, noise, plan, backend="serial").heights


def _make_store(path, plan, chunk=None):
    return SurfaceStore.create(
        path, shape=(plan.total_nx, plan.total_ny),
        chunk=chunk or (plan.tile_nx, plan.tile_ny),
    )


# ---------------------------------------------------------------------------
# Format basics
# ---------------------------------------------------------------------------
class TestStoreBasics:
    def test_create_open_round_trip(self, tmp_path):
        store = SurfaceStore.create(
            tmp_path / "s", shape=(10, 14), chunk=(4, 6),
            dx=0.5, dy=0.25, origin=(3, -2), meta={"note": "x"},
        )
        store.close()
        s2 = SurfaceStore.open(tmp_path / "s", mode="r")
        assert s2.shape == (10, 14)
        assert s2.chunk_shape == (4, 6)
        assert s2.n_chunks == (3, 3)
        assert s2.chunks_total == 9
        assert s2.origin == (3, -2)
        assert s2.manifest["meta"] == {"note": "x"}
        assert s2.fraction_done == 0.0
        assert s2.summary()["format"] == FORMAT_VERSION
        assert s2.summary()["nbytes"] == 10 * 14 * 8

    def test_create_refuses_existing(self, tmp_path):
        SurfaceStore.create(tmp_path / "s", shape=(8, 8), chunk=(4, 4))
        with pytest.raises(FileExistsError):
            SurfaceStore.create(tmp_path / "s", shape=(8, 8), chunk=(4, 4))

    def test_rejects_bad_geometry(self, tmp_path):
        with pytest.raises(ValueError):
            SurfaceStore.create(tmp_path / "a", shape=(0, 8), chunk=(4, 4))
        with pytest.raises(ValueError):
            SurfaceStore.create(tmp_path / "b", shape=(8, 8), chunk=(0, 4))

    def test_chunk_grid_matches_tile_plan(self, tmp_path):
        """Chunk index must equal tile index for a matching plan."""
        plan = TilePlan(total_nx=10, total_ny=14, tile_nx=4, tile_ny=6)
        store = _make_store(tmp_path / "s", plan)
        tiles = plan.tiles()
        assert store.chunks_total == len(tiles)
        for i, t in enumerate(tiles):
            assert store.chunk_window(i) == (t.x0, t.y0, t.nx, t.ny)

    def test_write_read_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        store = SurfaceStore.create(tmp_path / "s", shape=(10, 14),
                                    chunk=(4, 6))
        full = np.zeros((10, 14))
        for i in range(store.chunks_total):
            x0, y0, nx, ny = store.chunk_window(i)
            values = rng.normal(size=(nx, ny))
            full[x0:x0 + nx, y0:y0 + ny] = values
            store.write_chunk(i, values)
        assert store.done.all()
        store.close()
        s2 = SurfaceStore.open(tmp_path / "s", mode="r")
        assert s2.done.all()
        np.testing.assert_array_equal(np.asarray(s2.heights()), full)
        np.testing.assert_array_equal(s2.read_window(2, 3, 5, 7),
                                      full[2:7, 3:10])

    def test_partial_window_marks_nothing(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(8, 8),
                                    chunk=(4, 4))
        store.write_window(1, 1, np.ones((5, 5)))  # spans, covers no chunk
        assert not store.done.any()
        store.write_window(0, 0, np.ones((4, 8)))  # covers chunks 0 and 1
        assert store.done_indices() == [0, 1]

    def test_write_bounds_and_modes(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(8, 8),
                                    chunk=(4, 4))
        with pytest.raises(ValueError):
            store.write_window(6, 0, np.ones((4, 4)))
        with pytest.raises(ValueError):
            store.write_chunk(0, np.ones((3, 3)))
        with pytest.raises(IndexError):
            store.chunk_window(99)
        store.close()
        ro = SurfaceStore.open(tmp_path / "s", mode="r")
        with pytest.raises(ValueError):
            ro.write_window(0, 0, np.ones((4, 4)))
        with pytest.raises(ValueError):
            SurfaceStore.open(tmp_path / "s", mode="w")

    def test_surface_view_is_memmap(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(8, 8),
                                    chunk=(4, 4), dx=2.0, dy=2.0,
                                    origin=(4, 0))
        store.write_window(0, 0, np.full((8, 8), 1.5))
        store.flush()
        surf = store.surface()
        assert isinstance(surf.heights, np.memmap)
        assert surf.origin == (8.0, 0.0)
        assert surf.grid.dx == 2.0
        assert surf.height_mean() == 1.5
        assert surf.provenance["store"]["chunks_done"] == 4

    def test_validate_plan_mismatch(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(8, 8),
                                    chunk=(4, 4))
        store.validate_plan(TilePlan(total_nx=8, total_ny=8,
                                     tile_nx=4, tile_ny=4))
        with pytest.raises(ValueError):
            store.validate_plan(TilePlan(total_nx=8, total_ny=8,
                                         tile_nx=2, tile_ny=4))
        with pytest.raises(ValueError):
            store.validate_plan(TilePlan(total_nx=12, total_ny=8,
                                         tile_nx=4, tile_ny=4))


# ---------------------------------------------------------------------------
# Corruption: every torn file fails loudly, never garbage heights
# ---------------------------------------------------------------------------
class TestStoreCorruption:
    @pytest.fixture
    def store_dir(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(8, 8),
                                    chunk=(4, 4))
        store.write_window(0, 0, np.ones((8, 8)))
        store.close()
        return tmp_path / "s"

    def test_torn_manifest(self, store_dir):
        manifest = store_dir / "manifest.json"
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 2])  # torn mid-file
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_manifest_not_object(self, store_dir):
        (store_dir / "manifest.json").write_text('"just a string"')
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_missing_manifest(self, store_dir):
        (store_dir / "manifest.json").unlink()
        with pytest.raises(FileNotFoundError):
            SurfaceStore.open(store_dir)

    def test_wrong_format_version(self, store_dir):
        manifest = store_dir / "manifest.json"
        data = json.loads(manifest.read_text())
        data["format"] = "repro.store/v999"
        manifest.write_text(json.dumps(data))
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_missing_geometry(self, store_dir):
        manifest = store_dir / "manifest.json"
        data = json.loads(manifest.read_text())
        del data["chunk"]
        manifest.write_text(json.dumps(data))
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_missing_heights(self, store_dir):
        (store_dir / "heights.npy").unlink()
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_truncated_heights(self, store_dir):
        heights = store_dir / "heights.npy"
        with open(heights, "r+b") as fh:
            fh.truncate(heights.stat().st_size - 64)
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_heights_shape_mismatch(self, store_dir):
        np.save(store_dir / "heights.npy", np.zeros((4, 4)))
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_bitmap_wrong_length(self, store_dir):
        np.save(store_dir / "chunks.npy", np.zeros(7, dtype=bool))
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)

    def test_bitmap_wrong_dtype(self, store_dir):
        np.save(store_dir / "chunks.npy", np.zeros(4, dtype=np.int64))
        with pytest.raises(StoreCorrupt):
            SurfaceStore.open(store_dir)


# ---------------------------------------------------------------------------
# Async writeback
# ---------------------------------------------------------------------------
class TestStoreWriter:
    def test_async_writes_land(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(8, 8),
                                    chunk=(4, 4))
        rng = np.random.default_rng(1)
        full = np.empty((8, 8))
        with store.writer() as writer:
            for i in range(store.chunks_total):
                x0, y0, nx, ny = store.chunk_window(i)
                values = rng.normal(size=(nx, ny))
                full[x0:x0 + nx, y0:y0 + ny] = values
                writer.submit(i, x0, y0, values)
        assert store.done.all()
        np.testing.assert_array_equal(np.asarray(store.heights()), full)
        # bitmap was persisted by the writer, not just in memory
        reopened = SurfaceStore.open(tmp_path / "s", mode="r")
        assert reopened.done.all()

    def test_error_propagates_without_deadlock(self, tmp_path, monkeypatch):
        store = SurfaceStore.create(tmp_path / "s", shape=(64, 8),
                                    chunk=(4, 8))

        def boom(self, x0, y0, values, *, mark=True):
            raise OSError("disk on fire")

        monkeypatch.setattr(SurfaceStore, "write_window", boom)
        writer = store.writer(queue_depth=1)
        # keep submitting past the failure: the writer must keep
        # draining (no deadlock) and surface the error eventually
        with pytest.raises(OSError, match="disk on fire"):
            for i in range(store.chunks_total):
                x0, y0, nx, ny = store.chunk_window(i)
                writer.submit(i, x0, y0, np.zeros((nx, ny)))
            writer.close()
        writer.close(raise_pending=False)
        assert not store.done.any()

    def test_submit_after_close_rejected(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(4, 4),
                                    chunk=(4, 4))
        writer = store.writer()
        writer.close()
        with pytest.raises(RuntimeError):
            writer.submit(0, 0, 0, np.zeros((4, 4)))

    def test_queue_depth_validated(self, tmp_path):
        store = SurfaceStore.create(tmp_path / "s", shape=(4, 4),
                                    chunk=(4, 4))
        with pytest.raises(ValueError):
            store.writer(queue_depth=0)

    def test_obs_metrics_recorded(self, tmp_path, gen, noise, plan):
        store = _make_store(tmp_path / "s", plan)
        with obs.recording() as rec:
            generate_tiled(gen, noise, plan, backend="serial", out=store)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["store.chunks_written"] == len(plan)
        assert counters["store.bytes_written"] == N * N * 8
        gauges = rec.metrics.as_dict()["gauges"]
        assert "store.queue_depth" in gauges
        hists = rec.metrics.as_dict()["histograms"]
        assert hists["store.flush_seconds"]["count"] == len(plan)


# ---------------------------------------------------------------------------
# Differential: store-backed == in-memory, bit for bit
# ---------------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("thread", 2), ("process", 2),
    ])
    def test_backends_bit_identical(self, tmp_path, gen, noise, plan,
                                    reference, backend, workers):
        store = _make_store(tmp_path / "s", plan)
        surface = generate_tiled(gen, noise, plan, backend=backend,
                                 workers=workers, out=store)
        np.testing.assert_array_equal(np.asarray(surface.heights), reference)
        assert isinstance(surface.heights, np.memmap)
        assert surface.provenance["store"]["chunks_done"] == len(plan)
        assert store.done.all()

    @given(tile_nx=st.integers(min_value=13, max_value=64),
           tile_ny=st.integers(min_value=13, max_value=64))
    @settings(max_examples=6, deadline=None)
    def test_tile_shapes_bit_identical(self, gen, noise, tile_nx, tile_ny):
        """For any tile/chunk shape, store == in-memory on the same plan."""
        plan = TilePlan(total_nx=N, total_ny=N,
                        tile_nx=tile_nx, tile_ny=tile_ny)
        expected = generate_tiled(gen, noise, plan, backend="serial").heights
        tmp = tempfile.mkdtemp()
        try:
            store = _make_store(Path(tmp) / "s", plan)
            surface = generate_tiled(gen, noise, plan, backend="serial",
                                     out=store)
            np.testing.assert_array_equal(np.asarray(surface.heights),
                                          expected)
            store.close()
        finally:
            shutil.rmtree(tmp)

    def test_stream_to_store_resumes_from_bitmap(self, tmp_path, gen, noise,
                                                 plan):
        """stream_to_store skips chunks the bitmap already records."""
        store = _make_store(tmp_path / "s", plan, chunk=(TILE, N))
        # bit-identity holds per window *plan*: the reference must use
        # the same full-width chunk grid the stream will compute
        expected = generate_tiled(
            gen, noise,
            TilePlan(total_nx=N, total_ny=N, tile_nx=TILE, tile_ny=N),
            backend="serial",
        ).heights
        # pre-write the first full-width chunk by hand
        x0, y0, nx, ny = store.chunk_window(0)
        strip = generate_tiled(
            gen, noise,
            TilePlan(total_nx=nx, total_ny=ny, tile_nx=nx, tile_ny=ny),
            backend="serial",
        ).heights
        store.write_chunk(0, strip)
        assert store.done_indices() == [0]
        calls = []
        orig = type(gen).generate_window

        def spy(self, noise_, x0_, y0_, nx_, ny_, **kw):
            calls.append((x0_, y0_))
            return orig(self, noise_, x0_, y0_, nx_, ny_, **kw)

        type(gen).generate_window = spy
        try:
            stream_to_store(gen, noise, store)
        finally:
            type(gen).generate_window = orig
        assert (0, 0) not in calls  # chunk 0 was never recomputed
        assert store.done.all()
        np.testing.assert_array_equal(np.asarray(store.heights()), expected)

    def test_store_job_resume_mid_write(self, tmp_path, gen, noise, plan,
                                        reference):
        """Interrupt a store-backed job, resume, get identical heights —
        and the bitmap prevents any double-write of durable chunks."""
        store = _make_store(tmp_path / "store", plan)
        fp = FaultPlan.parse(
            [f"tile=2,attempt={a},kind=raise" for a in (1, 2, 3)]
        )
        with pytest.raises(TileFailedError):
            run_tiled(gen, noise, plan, checkpoint=tmp_path / "ck",
                      retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
                      fault_plan=fp, store=store)
        store.close()
        st_ = status(tmp_path / "ck")
        assert st_["status"] == "failed"
        assert "store" in st_
        # no npz heights blob for store-backed jobs
        assert not (tmp_path / "ck" / "state.npz").exists()
        done_before = set(
            SurfaceStore.open(tmp_path / "store", mode="r").done_indices()
        )
        assert done_before  # the serial run durably finished tiles 0, 1
        written = []
        orig = SurfaceStore.write_window

        def spy(self, x0, y0, values, *, mark=True):
            written.append((x0, y0))
            return orig(self, x0, y0, values, mark=mark)

        SurfaceStore.write_window = spy
        try:
            surface = resume(tmp_path / "ck", gen, retry=FAST)
        finally:
            SurfaceStore.write_window = orig
        np.testing.assert_array_equal(np.asarray(surface.heights), reference)
        tiles = plan.tiles()
        durable = {(tiles[i].x0, tiles[i].y0) for i in done_before}
        assert durable.isdisjoint(written), "durable chunks were rewritten"
        assert len(written) == len(tiles) - len(done_before)
        assert status(tmp_path / "ck")["status"] == "complete"

    def test_store_strips_job(self, tmp_path, gen, noise):
        # strip jobs compute full-width windows, so the bit-identity
        # reference must use the matching strip plan
        expected = generate_tiled(
            gen, noise,
            TilePlan(total_nx=N, total_ny=N, tile_nx=TILE, tile_ny=N),
            backend="serial",
        ).heights
        store = SurfaceStore.create(tmp_path / "store", shape=(N, N),
                                    chunk=(TILE, N))
        surface = run_strips(gen, noise, N, N, TILE,
                             checkpoint=tmp_path / "ck",
                             retry=FAST, store=store)
        np.testing.assert_array_equal(np.asarray(surface.heights), expected)
        assert store.done.all()


# ---------------------------------------------------------------------------
# Crash injection through the store
# ---------------------------------------------------------------------------
@pytest.mark.faults
class TestStoreFaults:
    def test_kill_through_store_then_resume(self, tmp_path, gen, noise,
                                            plan, reference):
        """A pool worker dies mid-job while writing through the store;
        resume finishes from the bitmap with no double-writes and
        heights identical to an uninterrupted run."""
        store = _make_store(tmp_path / "store", plan)
        fp = FaultPlan.of(FaultSpec(tile=1, attempt=1, kind="kill"))
        with pytest.raises(PoolRespawnLimit):
            run_tiled(gen, noise, plan, checkpoint=tmp_path / "ck",
                      backend="process", workers=2,
                      retry=RetryPolicy(backoff_base=0.0, max_respawns=0,
                                        degrade=False),
                      fault_plan=fp, store=store)
        store.close()
        done_before = set(
            SurfaceStore.open(tmp_path / "store", mode="r").done_indices()
        )
        written = []
        orig = SurfaceStore.write_window

        def spy(self, x0, y0, values, *, mark=True):
            written.append((x0, y0))
            return orig(self, x0, y0, values, mark=mark)

        SurfaceStore.write_window = spy
        try:
            surface = resume(tmp_path / "ck", gen, backend="serial",
                             retry=FAST)
        finally:
            SurfaceStore.write_window = orig
        np.testing.assert_array_equal(np.asarray(surface.heights), reference)
        tiles = plan.tiles()
        durable = {(tiles[i].x0, tiles[i].y0) for i in done_before}
        assert durable.isdisjoint(written), "durable chunks were rewritten"
        assert len(written) == len(tiles) - len(done_before)

    def test_kill_respawn_completes_through_store(self, tmp_path, gen,
                                                  noise, plan, reference):
        """With respawns allowed the job survives the worker death in one
        go — still bit-identical through the store."""
        store = _make_store(tmp_path / "store", plan)
        fp = FaultPlan.of(FaultSpec(tile=1, attempt=1, kind="kill"))
        surface = run_tiled(gen, noise, plan, checkpoint=tmp_path / "ck",
                            backend="process", workers=2,
                            retry=RetryPolicy(backoff_base=0.0),
                            fault_plan=fp, store=store)
        np.testing.assert_array_equal(np.asarray(surface.heights), reference)
        assert store.done.all()


# ---------------------------------------------------------------------------
# Scale: the acceptance contracts
# ---------------------------------------------------------------------------
class TestScale:
    def test_2048_bit_identical(self, tmp_path, noise):
        """2048^2: store-backed tiled == in-memory tiled, bit for bit."""
        n = 2048
        gen = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=10.0, cly=10.0),
            Grid2D(nx=n, ny=n, lx=float(n), ly=float(n)),
            truncation=(16, 16),
        )
        plan = TilePlan(total_nx=n, total_ny=n, tile_nx=512, tile_ny=512)
        expected = generate_tiled(gen, noise, plan, backend="serial").heights
        store = _make_store(tmp_path / "s", plan)
        surface = generate_tiled(gen, noise, plan, backend="serial",
                                 out=store)
        np.testing.assert_array_equal(np.asarray(surface.heights), expected)
        store.close()

    def test_16384_peak_rss_under_half_output(self, tmp_path):
        """Generate a 16384^2 float64 surface (2 GiB) through the store
        in a fresh subprocess; its peak RSS must stay under 50% of the
        output size (it actually stays around a tenth)."""
        free = shutil.disk_usage(tmp_path).free
        if free < 3 * 2**30:  # pragma: no cover - tiny CI disks
            pytest.skip("needs ~2 GiB of scratch disk")
        script = textwrap.dedent("""
            import resource, sys
            import numpy as np
            from repro.core.grid import Grid2D
            from repro.core.rng import BlockNoise
            from repro.io.store import SurfaceStore
            from repro.parallel import TilePlan, generate_tiled

            N, TILE = 16384, 1024

            class StubGen:
                # cheap deterministic windowed generator: the test
                # measures the I/O path's memory, not FFT throughput
                grid = Grid2D(nx=N, ny=N, lx=float(N), ly=float(N))

                def generate_window(self, noise, x0, y0, nx, ny):
                    out = np.empty((nx, ny))
                    out[:] = np.arange(x0, x0 + nx)[:, None]
                    out += np.arange(y0, y0 + ny)[None, :] * 1e-6
                    return out

            plan = TilePlan(total_nx=N, total_ny=N,
                            tile_nx=TILE, tile_ny=TILE)
            store = SurfaceStore.create(sys.argv[1], shape=(N, N),
                                        chunk=(TILE, TILE))
            surface = generate_tiled(StubGen(), BlockNoise(seed=0), plan,
                                     backend="serial", out=store)
            assert store.done.all()
            # spot-check a few windows without paging the whole file
            for x0, y0 in ((0, 0), (N - 7, N - 5), (8000, 12000)):
                got = store.read_window(x0, y0, 4, 4)
                want = (np.arange(x0, x0 + 4)[:, None]
                        + np.arange(y0, y0 + 4)[None, :] * 1e-6)
                np.testing.assert_array_equal(got, want)
            store.close()
            peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            print("PEAK_RSS_KIB", peak_kib)
        """)
        out = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "big")],
            capture_output=True, text=True, timeout=560,
            env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent
                                   / "src")},
        )
        assert out.returncode == 0, out.stderr
        peak_kib = int(out.stdout.split("PEAK_RSS_KIB")[1].split()[0])
        output_bytes = 16384 * 16384 * 8
        assert peak_kib * 1024 < output_bytes // 2, (
            f"peak RSS {peak_kib / 2**20:.2f} GiB is not under half the "
            f"{output_bytes / 2**30:.0f} GiB output"
        )
        # the heights file really holds the full surface
        st = SurfaceStore.open(tmp_path / "big", mode="r")
        assert st.shape == (16384, 16384)
        assert st.fraction_done == 1.0
