"""Tests for the validation harness (checks + ensemble verification)."""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.validation.checks import (
    kernel_energy_closure,
    variance_closure,
    weight_acf_error,
)
from repro.validation.ensemble import (
    ensemble_variance,
    verify_homogeneous,
)


class TestChecks:
    def test_gaussian_acf_check_tight(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        s = GaussianSpectrum(h=1.0, clx=20.0, cly=20.0)
        rep = weight_acf_error(s, grid)
        assert rep.max_abs_error < 1e-6
        assert rep.rel_error_at_zero < 1e-6
        assert rep.variance_target == 1.0

    def test_exponential_acf_check_reports_discretisation(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        s = ExponentialSpectrum(h=1.0, clx=15.0, cly=15.0)
        rep = weight_acf_error(s, grid)
        # heavy tail -> visible error, still moderate
        assert 1e-4 < rep.rel_error_at_zero < 0.2

    def test_error_shrinks_with_refinement(self):
        s = ExponentialSpectrum(h=1.0, clx=15.0, cly=15.0)
        coarse = weight_acf_error(s, Grid2D(nx=64, ny=64, lx=256.0, ly=256.0))
        fine = weight_acf_error(s, Grid2D(nx=256, ny=256, lx=256.0, ly=256.0))
        assert fine.rel_error_at_zero < coarse.rel_error_at_zero

    def test_variance_closure_values(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        assert variance_closure(
            GaussianSpectrum(h=1.0, clx=20.0, cly=20.0), grid
        ) < 1e-9
        assert variance_closure(
            GaussianSpectrum(h=0.0, clx=20.0, cly=20.0), grid
        ) == 0.0

    def test_kernel_energy_closure(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        assert kernel_energy_closure(
            GaussianSpectrum(h=2.0, clx=20.0, cly=20.0), grid
        ) < 1e-9

    def test_report_as_dict(self):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        d = weight_acf_error(GaussianSpectrum(h=1, clx=8, cly=8), grid).as_dict()
        assert set(d) == {
            "max_abs_error", "rms_error", "rel_error_at_zero", "variance_target"
        }


class TestEnsemble:
    def test_verify_homogeneous_default_generator(self):
        grid = Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)
        s = GaussianSpectrum(h=1.0, clx=12.0, cly=12.0)
        rep = verify_homogeneous(s, grid, n_realisations=24, seed0=100)
        assert rep.variance_rel_error < 0.15
        assert rep.spectrum_rel_error < 0.25
        assert rep.acf_rms_error < 0.1
        assert rep.discrete_variance == pytest.approx(1.0, rel=1e-6)

    def test_verify_custom_generator_truncated(self):
        grid = Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)
        s = GaussianSpectrum(h=1.0, clx=12.0, cly=12.0)
        gen = ConvolutionGenerator(s, grid, truncation=0.999)
        rep = verify_homogeneous(
            s, grid, n_realisations=16, seed0=7,
            generate=lambda seed: gen.generate(seed=seed),
        )
        # truncated kernel preserves the variance (renormalised)
        assert rep.variance_rel_error < 0.2

    def test_ensemble_variance_converges(self):
        grid = Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)
        s = GaussianSpectrum(h=2.0, clx=12.0, cly=12.0)
        v = ensemble_variance(
            lambda seed: __import__("repro.core.convolution", fromlist=["x"])
            .convolve_full(s, grid, seed=seed),
            n_realisations=32,
        )
        assert v == pytest.approx(4.0, rel=0.15)

    def test_ensemble_variance_validation(self):
        with pytest.raises(ValueError):
            ensemble_variance(lambda s: np.zeros(4), 0)

    def test_report_as_dict(self):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        s = GaussianSpectrum(h=1.0, clx=10.0, cly=10.0)
        d = verify_homogeneous(s, grid, n_realisations=4).as_dict()
        assert "measured_variance" in d and "spectrum_rel_error" in d
