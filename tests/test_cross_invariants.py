"""Cross-product invariant sweep: every generation path on awkward grids.

Square grids with isotropic spectra hide transposition and axis-swap
bugs.  This sweep runs the central invariants over rectangular grids,
unequal spacings and anisotropic spectra, for each generation path
(direct DFT, full convolution, truncated spatial, windowed, tiled,
1D-marginal consistency), so an x/y mix-up anywhere in the chain cannot
survive.
"""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator, convolve_full
from repro.core.direct_dft import (
    direct_surface_from_array,
    hermitian_array_from_noise,
)
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.core.weights import build_kernel, weight_array

GRIDS = [
    Grid2D(nx=64, ny=32, lx=256.0, ly=64.0),    # rect shape, rect cells
    Grid2D(nx=32, ny=96, lx=64.0, ly=384.0),    # tall
    Grid2D(nx=48, ny=48, lx=96.0, ly=240.0),    # square shape, rect cells
]
SPECTRA = [
    GaussianSpectrum(h=1.0, clx=12.0, cly=5.0),
    ExponentialSpectrum(h=0.7, clx=4.0, cly=9.0),
    PowerLawSpectrum(h=1.3, clx=7.0, cly=13.0, order=2.5),
]


def _case_id(val):
    if isinstance(val, Grid2D):
        return f"{val.nx}x{val.ny}@{val.dx:g}x{val.dy:g}"
    return f"{val.kind}-clx{val.clx:g}-cly{val.cly:g}"


@pytest.mark.parametrize("grid", GRIDS, ids=_case_id)
@pytest.mark.parametrize("spec", SPECTRA, ids=_case_id)
class TestCrossInvariants:
    def test_weight_sum_and_kernel_energy(self, grid, spec):
        w = weight_array(spec, grid)
        k = build_kernel(spec, grid)
        assert k.energy == pytest.approx(float(w.sum()), rel=1e-9)
        assert w.shape == grid.shape

    def test_methods_equal_on_matched_noise(self, grid, spec):
        x = standard_normal_field(grid.shape, seed=17)
        f_conv = convolve_full(spec, grid, noise=x)
        f_dir = direct_surface_from_array(
            spec, grid, hermitian_array_from_noise(x)
        )
        scale = max(float(np.max(np.abs(f_conv))), 1e-12)
        assert np.max(np.abs(f_conv - f_dir)) < 1e-9 * scale
        assert f_conv.shape == grid.shape

    def test_truncated_spatial_matches_full_inside(self, grid, spec):
        x = standard_normal_field(grid.shape, seed=18)
        full = convolve_full(spec, grid, noise=x)
        gen = ConvolutionGenerator(spec, grid, truncation=0.9999)
        approx = gen.generate(noise=x)
        err = np.sqrt(np.mean((approx - full) ** 2))
        assert err < 0.05 * max(full.std(), 1e-12)

    def test_windowed_overlap_consistency(self, grid, spec):
        gen = ConvolutionGenerator(spec, grid, truncation=0.999)
        bn = BlockNoise(seed=19, block=32)
        a = gen.generate_window(bn, -4, 3, 24, 20)
        b = gen.generate_window(bn, 6, 8, 10, 12)
        assert np.allclose(a[10:20, 5:17], b, atol=1e-10)

    def test_anisotropy_orientation_realised(self, grid, spec):
        # the axis with the longer correlation length must decorrelate
        # slower per *unit length* (sampled on a matched fine grid)
        fine = Grid2D(nx=256, ny=256, lx=512.0, ly=512.0)
        f = convolve_full(spec, fine, seed=20)
        f = f - f.mean()
        def corr_at(axis, lag_units):
            lag = int(round(lag_units / (fine.dx if axis == 0 else fine.dy)))
            shifted = np.roll(f, -lag, axis=axis)
            return float(np.mean(f * shifted) / f.var())
        probe = min(spec.clx, spec.cly)
        cx = corr_at(0, probe)
        cy = corr_at(1, probe)
        if spec.clx > spec.cly:
            assert cx > cy
        else:
            assert cy > cx
