"""Tests for batch generation and extreme-value statistics."""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.ensemble import (
    RunningFieldStats,
    ensemble_seeds,
    generate_ensemble,
)
from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.stats.extremes import (
    effective_sample_count,
    exceedance_curve,
    expected_maximum_gaussian,
    peak_count,
)


class TestEnsembleSeeds:
    def test_reproducible(self):
        assert ensemble_seeds(42, 8) == ensemble_seeds(42, 8)

    def test_distinct(self):
        seeds = ensemble_seeds(1, 64)
        assert len(set(seeds)) == 64

    def test_root_sensitivity(self):
        assert ensemble_seeds(1, 4) != ensemble_seeds(2, 4)

    def test_prefix_stability(self):
        # extending the ensemble keeps earlier seeds
        assert ensemble_seeds(7, 4) == ensemble_seeds(7, 8)[:4]

    def test_validation(self):
        with pytest.raises(ValueError):
            ensemble_seeds(1, -1)


class TestGenerateEnsemble:
    @pytest.fixture
    def gen(self):
        grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
        return ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=10.0, cly=10.0), grid,
            truncation=(6, 6),
        )

    def test_stack_shape(self, gen):
        stack = generate_ensemble(lambda s: gen.generate(seed=s), 5,
                                  root_seed=3)
        assert stack.shape == (5, 32, 32)

    def test_serial_thread_identical(self, gen):
        f = lambda s: gen.generate(seed=s)  # noqa: E731
        a = generate_ensemble(f, 6, root_seed=1, backend="serial")
        b = generate_ensemble(f, 6, root_seed=1, backend="thread", workers=3)
        assert np.array_equal(a, b)

    def test_realisations_independent(self, gen):
        stack = generate_ensemble(lambda s: gen.generate(seed=s), 3)
        assert not np.array_equal(stack[0], stack[1])

    def test_validation(self, gen):
        with pytest.raises(ValueError):
            generate_ensemble(lambda s: np.zeros(3), 0)
        with pytest.raises(ValueError):
            generate_ensemble(lambda s: np.zeros(3), 2, backend="mpi")

    def test_shape_mismatch_detected(self):
        shapes = iter([(3,), (4,)])

        def bad(seed):
            return np.zeros(next(shapes))

        with pytest.raises(ValueError, match="shape"):
            generate_ensemble(bad, 2)


class TestRunningFieldStats:
    def test_matches_batch_moments(self, rng):
        stats = RunningFieldStats()
        fields = [rng.standard_normal((8, 8)) for _ in range(20)]
        for f in fields:
            stats.update(f)
        stack = np.stack(fields)
        assert np.allclose(stats.mean(), stack.mean(axis=0))
        assert np.allclose(stats.variance(), stack.var(axis=0))
        assert np.allclose(stats.variance(ddof=1), stack.var(axis=0, ddof=1))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningFieldStats().mean()

    def test_shape_mismatch(self, rng):
        s = RunningFieldStats()
        s.update(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError):
            s.update(rng.standard_normal((5, 5)))


class TestExceedance:
    def test_monotone_decreasing(self, rng):
        z, p = exceedance_curve(rng.standard_normal(10_000))
        assert np.all(np.diff(p) <= 1e-12)
        assert p[0] > 0.9 and p[-1] <= 0.01

    def test_gaussian_reference_point(self, rng):
        z, p = exceedance_curve(rng.standard_normal(200_000),
                                thresholds=np.array([0.0, 1.0, 2.0]))
        assert p[0] == pytest.approx(0.5, abs=0.01)
        assert p[1] == pytest.approx(0.1587, abs=0.01)
        assert p[2] == pytest.approx(0.0228, abs=0.005)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exceedance_curve(np.array([]))


class TestEffectiveCountAndMaximum:
    def test_effective_count(self):
        assert effective_sample_count(100.0, 100.0, 10.0, 10.0) == \
            pytest.approx(10_000.0 / (np.pi * 100.0))
        with pytest.raises(ValueError):
            effective_sample_count(0.0, 1.0, 1.0, 1.0)

    def test_expected_maximum_grows_with_n(self):
        lo = expected_maximum_gaussian(1.0, 100.0)
        hi = expected_maximum_gaussian(1.0, 1_000_000.0)
        assert hi > lo > 1.0

    def test_expected_maximum_matches_simulation(self, rng):
        n = 5000
        maxima = [rng.standard_normal(n).max() for _ in range(200)]
        predicted = expected_maximum_gaussian(1.0, n)
        assert np.mean(maxima) == pytest.approx(predicted, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_maximum_gaussian(-1.0, 100.0)
        with pytest.raises(ValueError):
            expected_maximum_gaussian(1.0, 2.0)


class TestPeakCount:
    def test_single_peak(self):
        h = np.zeros((5, 5))
        h[2, 2] = 3.0
        assert peak_count(h, 1.0) == 1
        assert peak_count(h, 5.0) == 0

    def test_boundary_not_counted(self):
        h = np.zeros((5, 5))
        h[0, 2] = 9.0
        assert peak_count(h, 1.0) == 0

    def test_plateau_not_strict_peak(self):
        h = np.zeros((5, 5))
        h[2, 2] = h[2, 3] = 2.0
        assert peak_count(h, 1.0) == 0

    def test_peak_density_scales_with_roughness(self):
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        from repro.core.convolution import convolve_full

        fine = convolve_full(GaussianSpectrum(h=1.0, clx=6.0, cly=6.0),
                             grid, seed=2)
        coarse = convolve_full(GaussianSpectrum(h=1.0, clx=40.0, cly=40.0),
                               grid, seed=2)
        assert peak_count(fine, 0.0) > 4 * peak_count(coarse, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_count(np.zeros((2, 5)), 0.0)
