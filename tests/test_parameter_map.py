"""Unit tests for blend layouts (plate lattice eqns 37-39, layered regions)."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.fields.parameter_map import (
    LayeredLayout,
    PlateLattice,
    RegionSpec,
    WeightMap,
)
from repro.fields.regions import Circle, Rectangle


@pytest.fixture
def s1():
    return GaussianSpectrum(h=1.0, clx=10.0, cly=10.0)


@pytest.fixture
def s2():
    return ExponentialSpectrum(h=2.0, clx=20.0, cly=20.0)


class TestWeightMap:
    def test_validation_shapes(self, s1):
        with pytest.raises(ValueError):
            WeightMap(spectra=[s1], weights=np.ones((2, 4, 4)))

    def test_validate_partition(self, s1, s2):
        w = np.full((2, 4, 4), 0.5)
        WeightMap(spectra=[s1, s2], weights=w).validate()
        w2 = np.full((2, 4, 4), 0.6)
        with pytest.raises(ValueError):
            WeightMap(spectra=[s1, s2], weights=w2).validate()

    def test_validate_bounds(self, s1, s2):
        w = np.stack([np.full((4, 4), 1.5), np.full((4, 4), -0.5)])
        with pytest.raises(ValueError):
            WeightMap(spectra=[s1, s2], weights=w).validate()

    def test_dominant_region(self, s1, s2):
        w = np.zeros((2, 2, 2))
        w[0, 0, :] = 1.0
        w[1, 1, :] = 1.0
        wm = WeightMap(spectra=[s1, s2], weights=w)
        dom = wm.dominant_region()
        assert dom[0, 0] == 0 and dom[1, 0] == 1


class TestPlateLattice:
    def test_edge_validation(self, s1):
        with pytest.raises(ValueError):
            PlateLattice([0.0, 0.0, 10.0], [0.0, 10.0], [[s1], [s1]])
        with pytest.raises(ValueError):
            PlateLattice([0.0], [0.0, 10.0], [[s1]])

    def test_spectra_shape_validation(self, s1):
        with pytest.raises(ValueError):
            PlateLattice([0.0, 5.0, 10.0], [0.0, 10.0], [[s1]])

    def test_negative_half_width_rejected(self, s1):
        with pytest.raises(ValueError):
            PlateLattice([0.0, 10.0], [0.0, 10.0], [[s1]], half_width=-1.0)

    def test_partition_of_unity_hard_edges(self, s1, s2):
        grid = Grid2D(nx=16, ny=16, lx=32.0, ly=32.0)
        lat = PlateLattice([0.0, 16.0, 32.0], [0.0, 32.0], [[s1], [s2]])
        wm = lat.weight_map(grid)
        wm.validate()
        assert np.allclose(wm.weights.sum(axis=0), 1.0)

    def test_partition_of_unity_with_transitions(self, s1, s2):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        lat = PlateLattice(
            [0.0, 32.0, 64.0], [0.0, 32.0, 64.0],
            [[s1, s2], [s2, s1]], half_width=8.0,
        )
        wm = lat.weight_map(grid)
        wm.validate()

    def test_hard_edge_assignment(self, s1, s2):
        grid = Grid2D(nx=8, ny=8, lx=32.0, ly=32.0)  # dx = 4
        lat = PlateLattice([0.0, 16.0, 32.0], [0.0, 32.0], [[s1], [s2]])
        wm = lat.weight_map(grid)
        # x = 0..12 -> plate 0; x = 16..28 -> plate 1
        assert np.all(wm.weights[0][grid.x < 16.0, :] == 1.0)
        assert np.all(wm.weights[1][grid.x >= 16.0, :] == 1.0)

    def test_transition_is_linear_across_interior_edge(self, s1, s2):
        grid = Grid2D(nx=64, ny=4, lx=64.0, ly=4.0)
        lat = PlateLattice([0.0, 32.0, 64.0], [0.0, 4.0], [[s1], [s2]],
                           half_width=8.0)
        wm = lat.weight_map(grid)
        x = grid.x
        band = (x > 24.0) & (x < 40.0)
        expected = np.clip((x[band] - 24.0) / 16.0, 0, 1)
        assert np.allclose(wm.weights[1][band, 0], expected)

    def test_domain_ends_have_no_ramp(self, s1, s2):
        grid = Grid2D(nx=32, ny=4, lx=64.0, ly=4.0)
        lat = PlateLattice([0.0, 32.0, 64.0], [0.0, 4.0], [[s1], [s2]],
                           half_width=30.0)
        wm = lat.weight_map(grid)
        assert wm.weights[0][0, 0] == pytest.approx(1.0)

    def test_anisotropic_half_width(self, s1, s2):
        grid = Grid2D(nx=16, ny=16, lx=32.0, ly=32.0)
        lat = PlateLattice(
            [0.0, 16.0, 32.0], [0.0, 16.0, 32.0],
            [[s1, s2], [s2, s1]], half_width=(4.0, 8.0),
        )
        wm = lat.weight_map(grid)
        wm.validate()

    def test_quadrants_constructor(self, s1, s2):
        lat = PlateLattice.quadrants(64.0, 64.0, s1, s2, s1, s2, half_width=4.0)
        assert lat.n_plates == (2, 2)
        grid = Grid2D(nx=16, ny=16, lx=64.0, ly=64.0)
        wm = lat.weight_map(grid)
        # Q1 spectrum rules the (high-x, high-y) corner
        dom = wm.dominant_region()
        idx_q1 = wm.spectra.index(s1)
        assert dom[-1, -1] in [i for i, s in enumerate(wm.spectra) if s == s1]

    def test_origin_offset(self, s1, s2):
        # weights evaluated with an origin shift must match a larger grid
        grid = Grid2D(nx=32, ny=8, lx=64.0, ly=16.0)
        lat = PlateLattice([0.0, 32.0, 64.0], [0.0, 16.0], [[s1], [s2]],
                           half_width=6.0)
        wm_full = lat.weight_map(grid)
        sub = grid.with_shape(16, 8)
        wm_sub = lat.weight_map(sub, origin=(32.0, 0.0))
        assert np.allclose(wm_sub.weights, wm_full.weights[:, 16:, :])


class TestLayeredLayout:
    def test_background_only(self, s1):
        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0)
        wm = LayeredLayout(s1, []).weight_map(grid)
        assert wm.n_regions == 1
        assert np.allclose(wm.weights, 1.0)

    def test_circle_patch(self, s1, s2):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        lay = LayeredLayout(
            s1, [RegionSpec(Circle(32.0, 32.0, 16.0), s2, half_width=4.0)]
        )
        wm = lay.weight_map(grid)
        wm.validate()
        # centre is pure patch; far corner pure background
        ic = 16
        assert wm.weights[1][ic, ic] == pytest.approx(1.0)
        assert wm.weights[0][0, 0] == pytest.approx(1.0)

    def test_overlapping_patches_renormalised(self, s1, s2):
        grid = Grid2D(nx=32, ny=32, lx=64.0, ly=64.0)
        lay = LayeredLayout(
            s1,
            [
                RegionSpec(Circle(28.0, 32.0, 12.0), s2, half_width=6.0),
                RegionSpec(Circle(36.0, 32.0, 12.0), s2, half_width=6.0),
            ],
        )
        wm = lay.weight_map(grid)
        wm.validate()

    def test_rectangle_patch_hard_edge(self, s1, s2):
        grid = Grid2D(nx=16, ny=16, lx=16.0, ly=16.0)
        lay = LayeredLayout(
            s1, [RegionSpec(Rectangle(4.0, 12.0, 4.0, 12.0), s2, half_width=0.0)]
        )
        wm = lay.weight_map(grid)
        wm.validate()
        assert wm.weights[1][8, 8] == 1.0
        assert wm.weights[1][0, 0] == 0.0
