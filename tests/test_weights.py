"""Unit tests for weighting arrays and kernels (eqns 14-17, 34-35)."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from tests.tolerances import variance_rtol
from repro.core.weights import (
    Kernel,
    amplitude_array,
    build_kernel,
    kernel_half_width,
    truncate_kernel,
    truncate_kernel_energy,
    weight_array,
    weight_autocorrelation,
)


class TestWeightArray:
    def test_shape_and_positivity(self, any_spectrum, grid):
        w = weight_array(any_spectrum, grid)
        assert w.shape == grid.shape
        assert np.all(w >= 0)

    def test_sum_approximates_variance(self, any_spectrum, grid):
        # eqn 1 discretised: sum w ~ h^2
        w = weight_array(any_spectrum, grid)
        assert w.sum() == pytest.approx(any_spectrum.variance,
                                        rel=variance_rtol(any_spectrum))

    def test_even_symmetry_under_folding(self, gaussian, grid):
        # w[m] == w[N - m] for m in 1..N-1 (eqn 16)
        w = weight_array(gaussian, grid)
        assert np.allclose(w[1:, :], w[1:, :][::-1, :])
        assert np.allclose(w[:, 1:], w[:, 1:][:, ::-1])

    def test_dc_bin_is_peak_for_lowpass(self, gaussian, grid):
        w = weight_array(gaussian, grid)
        assert w[0, 0] == w.max()

    def test_amplitude_is_sqrt(self, gaussian, grid):
        w = weight_array(gaussian, grid)
        v = amplitude_array(gaussian, grid)
        assert np.allclose(v * v, w)

    def test_anisotropic_orientation(self, grid):
        # longer clx -> narrower spectrum along Kx -> w falls faster in x
        s = GaussianSpectrum(h=1.0, clx=40.0, cly=10.0)
        w = weight_array(s, grid)
        assert w[4, 0] < w[0, 4]


class TestWeightAutocorrelation:
    def test_zero_lag_is_variance(self, any_spectrum, grid):
        acf = weight_autocorrelation(any_spectrum, grid)
        assert acf[0, 0] == pytest.approx(any_spectrum.variance,
                                          rel=variance_rtol(any_spectrum))

    def test_matches_analytic_acf_gaussian(self, grid):
        # the paper's accuracy check: DFT(w) ~ rho(r)
        s = GaussianSpectrum(h=1.0, clx=20.0, cly=20.0)
        acf = weight_autocorrelation(s, grid)
        x = grid.x_centered[:, None]
        y = grid.y_centered[None, :]
        expected = s.autocorrelation(x, y)
        assert np.max(np.abs(acf - expected)) < 1e-6

    def test_even_in_lag(self, any_spectrum, grid):
        acf = weight_autocorrelation(any_spectrum, grid)
        assert np.allclose(acf[1:, :], acf[1:, :][::-1, :], atol=1e-12)


class TestKernel:
    def test_kernel_centre_is_peak(self, any_spectrum, grid):
        k = build_kernel(any_spectrum, grid)
        assert k.shape == grid.shape
        assert (k.cx, k.cy) == (grid.mx, grid.my)
        assert k.values[k.cx, k.cy] == pytest.approx(k.values.max())

    def test_kernel_energy_is_variance(self, any_spectrum, grid):
        k = build_kernel(any_spectrum, grid)
        assert k.energy == pytest.approx(any_spectrum.variance,
                                         rel=variance_rtol(any_spectrum))

    def test_kernel_symmetric(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        v = k.values
        # symmetric about the centre along both axes (even spectrum)
        assert np.allclose(v[1:, :], v[1:, :][::-1, :], atol=1e-12)
        assert np.allclose(v[:, 1:], v[:, 1:][:, ::-1], atol=1e-12)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            Kernel(values=np.zeros(3), cx=0, cy=0, dx=1.0, dy=1.0)
        with pytest.raises(ValueError):
            Kernel(values=np.zeros((3, 3)), cx=5, cy=0, dx=1.0, dy=1.0)

    def test_half_widths(self):
        k = Kernel(values=np.zeros((5, 7)), cx=2, cy=3, dx=1.0, dy=1.0)
        assert k.half_width_x == 2
        assert k.half_width_y == 3
        k2 = Kernel(values=np.zeros((5, 7)), cx=1, cy=6, dx=1.0, dy=1.0)
        assert k2.half_width_x == 3
        assert k2.half_width_y == 6


class TestTruncation:
    def test_truncate_shape_and_centre(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        t = truncate_kernel(k, 5, 3)
        assert t.shape == (11, 7)
        assert (t.cx, t.cy) == (5, 3)
        # centre value preserved
        assert t.values[5, 3] == k.values[k.cx, k.cy]

    def test_truncate_clips_at_edges(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        t = truncate_kernel(k, 10_000, 10_000)
        assert t.shape == k.shape

    def test_truncate_rejects_negative(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        with pytest.raises(ValueError):
            truncate_kernel(k, -1, 0)

    def test_energy_truncation_keeps_fraction(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        t = truncate_kernel_energy(k, 0.99, renormalise=False)
        assert t.energy >= 0.99 * k.energy
        assert t.shape[0] < k.shape[0]  # actually truncates

    def test_energy_truncation_renormalises(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        t = truncate_kernel_energy(k, 0.99, renormalise=True)
        assert t.energy == pytest.approx(k.energy, rel=1e-12)

    def test_kernel_half_width_monotone_in_fraction(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        hx1, _ = kernel_half_width(k, 0.90)
        hx2, _ = kernel_half_width(k, 0.9999)
        assert hx2 >= hx1

    def test_kernel_half_width_full_energy(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        hx, hy = kernel_half_width(k, 1.0)
        t = truncate_kernel(k, hx, hy)
        assert t.energy == pytest.approx(k.energy, rel=1e-9)

    def test_kernel_half_width_validation(self, gaussian, grid):
        k = build_kernel(gaussian, grid)
        with pytest.raises(ValueError):
            kernel_half_width(k, 0.0)
        with pytest.raises(ValueError):
            kernel_half_width(k, 1.5)

    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.0000001, 2.0,
                                     float("nan"), float("inf")])
    def test_energy_fraction_validated_everywhere(self, gaussian, grid, bad):
        # regression: truncate_kernel_energy used to accept out-of-range
        # fractions silently (>1 kept the full kernel, <=0 kept 1 sample)
        k = build_kernel(gaussian, grid)
        with pytest.raises(ValueError, match="energy_fraction"):
            kernel_half_width(k, bad)
        with pytest.raises(ValueError, match="energy_fraction"):
            truncate_kernel_energy(k, bad)

    def test_energy_fraction_one_keeps_full_kernel(self, gaussian, grid):
        # 1.0 is the inclusive upper bound and must stay legal
        k = build_kernel(gaussian, grid)
        t = truncate_kernel_energy(k, 1.0, renormalise=False)
        assert t.energy == pytest.approx(k.energy, rel=1e-9)

    def test_smaller_cl_gives_smaller_support(self, grid):
        # the paper's claim: kernel support scales with correlation length
        k_small = build_kernel(GaussianSpectrum(h=1.0, clx=5.0, cly=5.0), grid)
        k_large = build_kernel(GaussianSpectrum(h=1.0, clx=20.0, cly=20.0), grid)
        hs, _ = kernel_half_width(k_small, 0.999)
        hl, _ = kernel_half_width(k_large, 0.999)
        assert hs < hl
