"""Property-based tests (hypothesis) for the extension modules."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.oned import (
    Exponential1D,
    Gaussian1D,
    Matern1D,
    build_kernel_1d,
    weight_vector,
)
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.core.spectra_ext import CompositeSpectrum, RotatedSpectrum
from repro.core.transform import gaussian_to_marginal
from repro.fields.continuous import level_weights
from repro.scattering.kirchhoff import (
    coherent_reflection_coefficient,
    rayleigh_parameter,
)
from repro.scattering.monte_carlo import tukey_taper
from repro.stats.extremes import exceedance_curve

heights = st.floats(min_value=0.05, max_value=5.0)
lengths = st.floats(min_value=1.0, max_value=40.0)


@st.composite
def spectra_1d(draw):
    kind = draw(st.sampled_from(["gaussian", "exponential", "matern"]))
    h = draw(heights)
    cl = draw(lengths)
    if kind == "gaussian":
        return Gaussian1D(h=h, cl=cl)
    if kind == "exponential":
        return Exponential1D(h=h, cl=cl)
    return Matern1D(h=h, cl=cl, order=draw(st.floats(0.6, 6.0)))


# ---------------------------------------------------------------------------
# 1D spectra / kernels
# ---------------------------------------------------------------------------
@given(spec=spectra_1d(), k=st.floats(-10.0, 10.0))
def test_1d_spectrum_nonnegative_even(spec, k):
    w = float(spec.spectrum(np.asarray(k)))
    assert w >= 0.0
    assert w == pytest.approx(float(spec.spectrum(np.asarray(-k))), rel=1e-12)


@given(spec=spectra_1d(), x=st.floats(-200.0, 200.0))
def test_1d_acf_bounded_and_even(spec, x):
    rho = float(spec.autocorrelation(np.asarray(x)))
    assert rho <= spec.variance * (1.0 + 1e-9)
    assert rho == pytest.approx(float(spec.autocorrelation(np.asarray(-x))),
                                rel=1e-9, abs=1e-12)


@given(spec=spectra_1d(), n=st.sampled_from([64, 256, 1024]))
@settings(max_examples=30, deadline=None)
def test_1d_kernel_energy_equals_weight_sum(spec, n):
    length = float(n)
    w = weight_vector(spec, n, length)
    k = build_kernel_1d(spec, n, length)
    assert k.energy == pytest.approx(float(w.sum()), rel=1e-9)


# ---------------------------------------------------------------------------
# Extended 2D spectra
# ---------------------------------------------------------------------------
@given(
    h1=heights, h2=heights, cl1=lengths, cl2=lengths,
    kx=st.floats(-3.0, 3.0), ky=st.floats(-3.0, 3.0),
)
def test_composite_additivity(h1, h2, cl1, cl2, kx, ky):
    a = GaussianSpectrum(h=h1, clx=cl1, cly=cl1)
    b = ExponentialSpectrum(h=h2, clx=cl2, cly=cl2)
    comp = CompositeSpectrum([a, b])
    assert float(comp.spectrum(kx, ky)) == pytest.approx(
        float(a.spectrum(kx, ky)) + float(b.spectrum(kx, ky)), rel=1e-12
    )
    assert comp.variance == pytest.approx(h1 * h1 + h2 * h2, rel=1e-12)


@given(
    h=heights, clx=lengths, cly=lengths,
    angle=st.floats(-np.pi, np.pi),
    kx=st.floats(-2.0, 2.0), ky=st.floats(-2.0, 2.0),
)
def test_rotated_even_and_variance_preserving(h, clx, cly, angle, kx, ky):
    rot = RotatedSpectrum(GaussianSpectrum(h=h, clx=clx, cly=cly), angle)
    w = float(rot.spectrum(kx, ky))
    assert w >= 0.0
    # even in each axis by construction (the symmetrised form)
    assert w == pytest.approx(float(rot.spectrum(-kx, ky)), rel=1e-9,
                              abs=1e-15)
    assert w == pytest.approx(float(rot.spectrum(kx, -ky)), rel=1e-9,
                              abs=1e-15)
    assert float(rot.autocorrelation(0.0, 0.0)) == pytest.approx(
        h * h, rel=1e-9
    )


# ---------------------------------------------------------------------------
# Continuous-layout level weights
# ---------------------------------------------------------------------------
@given(
    n_levels=st.integers(1, 6),
    values=st.lists(st.floats(0.1, 200.0), min_size=1, max_size=32),
    seed=st.integers(0, 10_000),
)
def test_level_weights_partition_and_reconstruction(n_levels, values, seed):
    rng = np.random.default_rng(seed)
    levels = np.sort(rng.uniform(1.0, 100.0, n_levels))
    assume(np.all(np.diff(levels) > 1e-6))
    v = np.asarray(values)
    idx, wl, wh = level_weights(v, levels)
    assert np.all((wl >= 0) & (wl <= 1) & (wh >= 0) & (wh <= 1))
    assert np.allclose(wl + wh, 1.0)
    upper = np.minimum(idx + 1, levels.size - 1)
    recon = wl * levels[idx] + wh * levels[upper]
    clamped = np.clip(v, levels[0], levels[-1])
    assert np.allclose(recon, clamped, rtol=1e-9)


# ---------------------------------------------------------------------------
# Transforms
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 1000), power=st.floats(0.3, 3.0))
@settings(max_examples=30, deadline=None)
def test_marginal_transform_monotone_in_field(seed, power):
    rng = np.random.default_rng(seed)
    f = rng.standard_normal(512)
    t = gaussian_to_marginal(f, lambda u: u**power)
    order = np.argsort(f)
    assert np.all(np.diff(t[order]) >= -1e-12)
    assert np.all((t >= 0.0) & (t <= 1.0))


# ---------------------------------------------------------------------------
# Scattering identities
# ---------------------------------------------------------------------------
@given(
    k=st.floats(0.5, 20.0), h=st.floats(0.0, 2.0),
    ti=st.floats(0.0, 1.2), ts=st.floats(-1.2, 1.2),
)
def test_rayleigh_parameter_nonnegative_symmetric(k, h, ti, ts):
    g = float(rayleigh_parameter(k, h, ti, np.asarray(ts)))
    assert g >= 0.0
    g_swap = float(rayleigh_parameter(k, h, ts, np.asarray(ti)))
    assert g == pytest.approx(g_swap, rel=1e-12)


@given(k=st.floats(0.5, 20.0), h=st.floats(0.0, 2.0), ti=st.floats(0.0, 1.2))
def test_coherent_coefficient_in_unit_interval(k, h, ti):
    r = coherent_reflection_coefficient(k, h, ti)
    assert 0.0 <= r <= 1.0


@given(n=st.integers(2, 512), alpha=st.floats(0.0, 1.0))
def test_tukey_taper_bounds(n, alpha):
    w = tukey_taper(n, alpha)
    assert w.shape == (n,)
    assert np.all((w >= -1e-12) & (w <= 1.0 + 1e-12))
    assert np.allclose(w, w[::-1])  # symmetric


# ---------------------------------------------------------------------------
# Extremes
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 1000), n=st.integers(10, 2000))
@settings(max_examples=30, deadline=None)
def test_exceedance_monotone_and_bounded(seed, n):
    rng = np.random.default_rng(seed)
    z, p = exceedance_curve(rng.standard_normal(n))
    assert np.all((p >= 0.0) & (p <= 1.0))
    assert np.all(np.diff(p) <= 1e-12)
