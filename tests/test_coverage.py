"""Tests for the PE coverage-map API."""

import numpy as np
import pytest

from repro.propagation.coverage import CoverageMap, compute_coverage

FREQ = 300e6


@pytest.fixture(scope="module")
def flat_cov():
    return compute_coverage(lambda x: 0.0, FREQ, x_max=600.0,
                            tx_height=20.0, z_max=200.0, nz=512)


class TestComputeCoverage:
    def test_shapes_and_monotone_ranges(self, flat_cov):
        assert flat_cov.pf.shape == (flat_cov.ranges.size,
                                     flat_cov.heights.size)
        assert np.all(np.diff(flat_cov.ranges) > 0)
        assert flat_cov.ground.shape == flat_cov.ranges.shape

    def test_two_ray_lobing_visible(self, flat_cov):
        # at the last range the height pattern must oscillate around 1
        row = flat_cov.pf[-1]
        z = flat_cov.heights
        band = (z > 4.0) & (z < 60.0)
        assert row[band].max() > 1.5
        assert row[band].min() < 0.5

    def test_sampled_terrain_input(self):
        xs = np.linspace(0.0, 600.0, 301)
        zs = 10.0 * np.exp(-(((xs - 300.0) / 40.0) ** 2))
        cov = compute_coverage((xs, zs), FREQ, x_max=600.0, tx_height=15.0,
                               z_max=200.0, nz=512)
        assert cov.ground.max() == pytest.approx(10.0, abs=1.0)

    def test_hill_reduces_coverage_behind(self):
        hill = lambda x: 50.0 * np.exp(-(((x - 300.0) / 30.0) ** 2))  # noqa: E731
        cov_h = compute_coverage(hill, FREQ, x_max=600.0, tx_height=10.0,
                                 z_max=250.0, nz=512)
        cov_f = compute_coverage(lambda x: 0.0, FREQ, x_max=600.0,
                                 tx_height=10.0, z_max=250.0, nz=512)
        # average pf at 2 m AGL beyond the hill
        r_probe = [450.0, 500.0, 550.0]
        shadow = np.mean([cov_h.at(r, 2.0) for r in r_probe])
        open_ = np.mean([cov_f.at(r, 2.0) for r in r_probe])
        assert shadow < 0.5 * open_

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_coverage((np.zeros(3), np.zeros(4)), FREQ, 100.0, 10.0,
                             100.0)
        with pytest.raises(ValueError):
            compute_coverage(lambda x: 0.0, FREQ, 100.0, 10.0, 100.0,
                             collect_every=0)
        with pytest.raises(ValueError):
            # x_max smaller than one collected step
            compute_coverage(lambda x: 0.0, FREQ, 1e-3, 10.0, 100.0)


class TestCoverageMap:
    def test_at_interpolation_bounds(self, flat_cov):
        v = flat_cov.at(300.0, 10.0)
        assert 0.0 <= v < 3.0
        with pytest.raises(ValueError):
            flat_cov.at(1e9, 10.0)
        with pytest.raises(ValueError):
            flat_cov.at(300.0, 1e9)

    def test_pf_db_floor(self, flat_cov):
        db = flat_cov.pf_db(floor_db=-50.0)
        assert db.min() >= -50.0

    def test_masked_image_blacks_terrain(self):
        hill = lambda x: 40.0 + 0.0 * x  # noqa: E731 constant plateau
        cov = compute_coverage(hill, FREQ, x_max=300.0, tx_height=30.0,
                               z_max=200.0, nz=256)
        img = cov.masked_image()
        below = np.broadcast_to(cov.heights[None, :] <= 40.0, img.shape)
        assert np.all(img[below] == 0.0)
        assert img[~below].max() > 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CoverageMap(
                ranges=np.arange(3.0), heights=np.arange(4.0),
                pf=np.zeros((2, 4)), ground=np.zeros(3),
                tx_height=1.0, frequency_hz=FREQ,
            )
        with pytest.raises(ValueError):
            CoverageMap(
                ranges=np.arange(3.0), heights=np.arange(4.0),
                pf=np.zeros((3, 4)), ground=np.zeros(2),
                tx_height=1.0, frequency_hz=FREQ,
            )
