"""Seeded statistical conformance gates for generation paths.

The paper's contract (Section 2.1, eqns 1-4) is statistical: heights
are zero-mean Gaussian with variance ``h^2`` and the prescribed
autocorrelation.  This suite pins those properties — for every spectrum
family the paper treats — against **both** production paths:

* the in-memory tiled executor, and
* the out-of-core store-backed tiled path (which must be bit-identical
  to it, asserted here at ensemble scale as well).

All seeds are fixed, so every statistic is a deterministic number; the
tolerances (centralised in :mod:`tests.tolerances`) are calibrated
margins against FFT rounding drift, not flaky confidence intervals.

The whole suite is parametrized over the engine precision: the opt-in
``float32`` mode must satisfy the *same* calibrated statistical gates
as ``float64`` (cell-by-cell, see ``tolerances.FLOAT32_SAFE``) and must
track the float64 surface sample-by-sample within single-precision FFT
rounding (``tolerances.float32_vs_float64_atol``).
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.core.spectra_ext import SelfAffineSpectrum
from repro.core.weights import weight_array, weight_autocorrelation
from repro.io.store import SurfaceStore
from repro.parallel import TilePlan, generate_tiled
from repro.stats.acf import acf2d_unbiased
from repro.stats.spectral import periodogram, radial_spectrum
from repro.validation.ensemble import ensemble_variance

from tests.tolerances import (
    FLOAT32_SAFE,
    SELF_AFFINE_HURST_ATOL,
    SELF_AFFINE_PLATEAU_LOG_MAX,
    acf_lag_cl_atol,
    ensemble_variance_rtol,
    float32_vs_float64_atol,
    ks_stat_max,
)

N = 96
TILE = 48
CL = 10.0  # clx = cly; lag index CL/dx = 10 on the unit-spacing grid
LAG = 10
SEED0 = 100
NSEEDS = 8
POOL_STRIDE = 7  # decimate pooled samples to tame spatial correlation

# The self-affine cell uses the roll-off form: qr = 0.4 puts the
# plateau corner well inside the resolved band (dK ~ 0.065, K_nyq ~ pi)
# and gives an effective correlation length clx = 1/qr = 2.5.
QR = 0.4
HURST = 0.8

SPECTRA = [
    GaussianSpectrum(h=1.0, clx=CL, cly=CL),
    ExponentialSpectrum(h=1.0, clx=CL, cly=CL),
    PowerLawSpectrum(h=1.0, clx=CL, cly=CL, order=2.0),
    SelfAffineSpectrum(sigma=1.0, hurst=HURST, qr=QR),
]


@pytest.fixture(scope="module", params=SPECTRA, ids=lambda s: s.kind)
def spectrum(request):
    return request.param


@pytest.fixture(scope="module", params=["float64", "float32"])
def dtype(request):
    return request.param


def _require_float32_safe(spectrum, dtype, statistic):
    """Gate a statistical cell on the calibrated float32-safe table."""
    if dtype == "float32" and (spectrum.kind, statistic) not in FLOAT32_SAFE:
        pytest.skip(
            f"({spectrum.kind}, {statistic}) is not verified "
            f"single-precision-safe; see tolerances.FLOAT32_SAFE"
        )


@pytest.fixture(scope="module")
def gen(spectrum, dtype):
    return ConvolutionGenerator(
        spectrum, Grid2D(nx=N, ny=N, lx=float(N), ly=float(N)), dtype=dtype
    )


@pytest.fixture(scope="module")
def plan():
    return TilePlan(total_nx=N, total_ny=N, tile_nx=TILE, tile_ny=TILE)


@pytest.fixture(scope="module")
def fields_memory(gen, plan):
    return [
        generate_tiled(gen, BlockNoise(seed=SEED0 + i), plan,
                       backend="serial").heights
        for i in range(NSEEDS)
    ]


@pytest.fixture(scope="module")
def fields_store(gen, plan, spectrum, tmp_path_factory):
    root = tmp_path_factory.mktemp(f"conformance-{spectrum.kind}")
    fields = []
    for i in range(NSEEDS):
        with SurfaceStore.create(root / f"s{i}", shape=(N, N),
                                 chunk=(TILE, TILE)) as store:
            generate_tiled(gen, BlockNoise(seed=SEED0 + i), plan,
                           backend="serial", out=store)
            fields.append(np.array(store.heights()))
    return fields


@pytest.fixture(scope="module", params=["memory", "store"])
def fields(request, fields_memory, fields_store):
    return fields_memory if request.param == "memory" else fields_store


@pytest.fixture(scope="module")
def discrete_variance(spectrum, gen):
    return float(weight_array(spectrum, gen.grid).sum())


def test_store_path_bit_identical_at_ensemble_scale(fields_memory,
                                                    fields_store):
    # The store format is float64-only; a float32 -> float64 cast is
    # exact, so store round-trips stay value-identical for both engine
    # precisions.
    for mem, st in zip(fields_memory, fields_store):
        np.testing.assert_array_equal(st, mem.astype(np.float64))


def test_float32_tracks_float64(spectrum, dtype, gen, plan):
    """The float32 surface is the float64 surface to FFT rounding."""
    if dtype != "float32":
        pytest.skip("cross-precision check runs once, on the float32 row")
    g64 = ConvolutionGenerator(spectrum, gen.grid)
    atol = float32_vs_float64_atol(spectrum)
    for i in range(2):
        h32 = generate_tiled(gen, BlockNoise(seed=SEED0 + i), plan,
                             backend="serial").heights
        h64 = generate_tiled(g64, BlockNoise(seed=SEED0 + i), plan,
                             backend="serial").heights
        assert h32.dtype == np.float32
        worst = float(np.abs(h32.astype(np.float64) - h64).max())
        assert worst < atol, (
            f"{spectrum.kind}: float32 deviates from float64 by {worst:.3e}"
        )


def test_height_marginal_ks(spectrum, dtype, fields, discrete_variance):
    """Pooled height samples follow N(0, sqrt(sum(w)))."""
    _require_float32_safe(spectrum, dtype, "ks")
    pooled = np.concatenate([f.ravel()[::POOL_STRIDE] for f in fields])
    ks = stats.kstest(pooled, "norm",
                      args=(0.0, np.sqrt(discrete_variance)))
    assert ks.statistic < ks_stat_max(spectrum), (
        f"{spectrum.kind}: KS statistic {ks.statistic:.4f} exceeds "
        f"{ks_stat_max(spectrum)}"
    )
    # and the mean is pinned near zero — with correlation length CL the
    # effective sample count is only ~(N/CL)^2 per field, so the bound
    # is ~4 sigma of the mean, not a naive i.i.d. interval
    assert abs(pooled.mean()) < 0.15 * np.sqrt(discrete_variance)


def test_rms_height(spectrum, dtype, fields, discrete_variance):
    """Ensemble variance converges to the discrete target ``sum(w)``."""
    _require_float32_safe(spectrum, dtype, "variance")
    measured = ensemble_variance(
        lambda seed: fields[seed - SEED0], NSEEDS, seed0=SEED0
    )
    rel = abs(measured - discrete_variance) / discrete_variance
    assert rel < ensemble_variance_rtol(spectrum), (
        f"{spectrum.kind}: variance {measured:.4f} vs target "
        f"{discrete_variance:.4f} (rel {rel:.4f})"
    )


def test_acf_at_lag_cl(spectrum, dtype, gen, fields, discrete_variance):
    """Ensemble ACF at lag ``(clx, 0)`` matches the discrete target."""
    _require_float32_safe(spectrum, dtype, "acf")
    target = weight_autocorrelation(spectrum, gen.grid)[LAG, 0]
    acf = np.zeros((LAG + 1, LAG + 1))
    for f in fields:
        acf += acf2d_unbiased(np.asarray(f, dtype=np.float64),
                              max_lag=(LAG, LAG))
    acf /= len(fields)
    diff = abs(acf[LAG, 0] - target) / discrete_variance
    assert diff < acf_lag_cl_atol(spectrum), (
        f"{spectrum.kind}: ACF({CL}, 0) = {acf[LAG, 0]:.4f} vs target "
        f"{target:.4f} (normalised diff {diff:.4f})"
    )


def _radial_profiles(spectrum, gen, fields, n_bins=32):
    """Ensemble-averaged measured radial PSD and the target spectrum
    binned over the *same* annuli (cancels the within-bin averaging
    bias of a steep power law)."""
    grid = gen.grid
    est = np.zeros(grid.shape)
    for f in fields:
        est += periodogram(np.asarray(f, dtype=np.float64), grid)
    est /= len(fields)
    k, measured = radial_spectrum(est, grid, n_bins=n_bins)
    kx, ky = grid.k_meshgrid(signed=True)
    _, target = radial_spectrum(np.asarray(spectrum.spectrum(kx, ky)),
                                grid, n_bins=n_bins)
    return k, measured, target


def test_radial_psd_slope_recovers_hurst(spectrum, dtype, gen, fields):
    """Log-log radial-PSD slope over the scaling band returns ``H``:
    the generated surface really is self-affine with the requested
    exponent, not merely variance-correct."""
    if spectrum.kind != "self_affine":
        pytest.skip("Hurst slope gate applies to the self-affine cell")
    _require_float32_safe(spectrum, dtype, "psd")
    k, measured, _ = _radial_profiles(spectrum, gen, fields)
    sel = (k >= 1.5 * QR) & (k <= 0.55 * np.pi) & (measured > 0)
    assert sel.sum() >= 5, "fit band collapsed; fixture geometry changed?"
    slope = np.polyfit(np.log(k[sel]), np.log(measured[sel]), 1)[0]
    h_fit = -(slope + 2.0) / 2.0
    assert abs(h_fit - HURST) < SELF_AFFINE_HURST_ATOL, (
        f"fitted H {h_fit:.4f} vs requested {HURST} "
        f"(slope {slope:.4f})"
    )


def test_radial_psd_qr_plateau(spectrum, dtype, gen, fields):
    """Below the roll-off wavevector the measured radial PSD sits on
    the requested plateau (checked in log ratio, bin for bin)."""
    if spectrum.kind != "self_affine":
        pytest.skip("plateau gate applies to the self-affine cell")
    _require_float32_safe(spectrum, dtype, "psd")
    k, measured, target = _radial_profiles(spectrum, gen, fields,
                                           n_bins=48)
    dk = 2.0 * np.pi / N
    sel = (k >= 1.5 * dk) & (k <= 0.6 * QR) & (measured > 0)
    assert sel.sum() >= 1, "no plateau bins; fixture geometry changed?"
    worst = float(np.max(np.abs(np.log(measured[sel] / target[sel]))))
    assert worst < SELF_AFFINE_PLATEAU_LOG_MAX, (
        f"plateau deviates by up to {worst:.3f} in log ratio "
        f"over {int(sel.sum())} bins"
    )
