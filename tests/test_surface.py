"""Unit tests for the Surface container."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.surface import Surface


@pytest.fixture
def surface(rng):
    grid = Grid2D(nx=32, ny=16, lx=64.0, ly=64.0)
    return Surface(heights=rng.standard_normal(grid.shape), grid=grid)


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0)
        with pytest.raises(ValueError):
            Surface(heights=np.zeros((4, 4)), grid=grid)

    def test_non_finite_rejected(self):
        grid = Grid2D(nx=4, ny=4, lx=4.0, ly=4.0)
        h = np.zeros((4, 4))
        h[1, 1] = np.nan
        with pytest.raises(ValueError):
            Surface(heights=h, grid=grid)

    def test_1d_rejected(self):
        grid = Grid2D(nx=4, ny=4, lx=4.0, ly=4.0)
        with pytest.raises(ValueError):
            Surface(heights=np.zeros(16), grid=grid)


class TestStatistics:
    def test_summary_keys(self, surface):
        s = surface.summary()
        for key in ("mean", "std", "min", "max", "rms_slope_x", "rms_slope_y",
                    "skewness", "kurtosis_excess"):
            assert key in s

    def test_std_matches_numpy(self, surface):
        assert surface.height_std() == pytest.approx(surface.heights.std())

    def test_flat_surface_moments(self):
        grid = Grid2D(nx=4, ny=4, lx=4.0, ly=4.0)
        s = Surface(heights=np.full((4, 4), 2.5), grid=grid)
        assert s.height_std() == 0.0
        assert s.skewness() == 0.0
        assert s.kurtosis_excess() == 0.0

    def test_rms_slope_of_plane(self):
        grid = Grid2D(nx=16, ny=16, lx=16.0, ly=16.0)
        X, _ = grid.meshgrid()
        s = Surface(heights=3.0 * X, grid=grid)
        sx, sy = s.rms_slope()
        assert sx == pytest.approx(3.0)
        assert sy == pytest.approx(0.0, abs=1e-12)

    def test_demean(self, surface):
        d = surface.demean()
        assert abs(d.height_mean()) < 1e-12
        assert d.height_std() == pytest.approx(surface.height_std())


class TestGeometry:
    def test_coordinates_include_origin(self):
        grid = Grid2D(nx=4, ny=4, lx=8.0, ly=8.0)
        s = Surface(heights=np.zeros((4, 4)), grid=grid, origin=(10.0, -4.0))
        assert s.x[0] == pytest.approx(10.0)
        assert s.y[0] == pytest.approx(-4.0)

    def test_window(self, surface):
        w = surface.window(slice(4, 12), slice(2, 10))
        assert w.shape == (8, 8)
        assert np.array_equal(w.heights, surface.heights[4:12, 2:10])
        assert w.origin[0] == pytest.approx(4 * surface.grid.dx)
        assert w.grid.dx == pytest.approx(surface.grid.dx)

    def test_window_rejects_strided(self, surface):
        with pytest.raises(ValueError):
            surface.window(slice(0, 8, 2), slice(0, 8))

    def test_window_rejects_empty(self, surface):
        with pytest.raises(ValueError):
            surface.window(slice(4, 4), slice(0, 8))

    def test_window_is_copy(self, surface):
        w = surface.window(slice(0, 4), slice(0, 4))
        w.heights[0, 0] = 999.0
        assert surface.heights[0, 0] != 999.0

    def test_profiles(self, surface):
        p = surface.profile_x(3)
        assert p.shape == (surface.shape[0],)
        assert np.array_equal(p, surface.heights[:, 3])
        q = surface.profile_y(5)
        assert np.array_equal(q, surface.heights[5, :])
