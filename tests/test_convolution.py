"""Unit tests for the convolution method (eqn 36) and its execution paths."""

import numpy as np
import pytest

from repro.core.convolution import (
    ConvolutionGenerator,
    apply_kernel_valid,
    convolve_full,
    convolve_reference,
    convolve_spatial,
    generate_window,
    noise_window_for,
    resolve_kernel,
)
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.weights import Kernel, build_kernel, truncate_kernel


class TestConvolveFull:
    def test_matches_reference_formula(self, gaussian, small_grid):
        # eqn 36 with the full kernel (wrap) == FFT path
        x = standard_normal_field(small_grid.shape, seed=1)
        kern = build_kernel(gaussian, small_grid)
        ref = convolve_reference(kern, x)
        fast = convolve_full(gaussian, small_grid, noise=x)
        assert np.allclose(ref, fast, atol=1e-12)

    def test_seed_vs_noise_paths(self, gaussian, grid):
        a = convolve_full(gaussian, grid, seed=3)
        x = standard_normal_field(grid.shape, seed=3)
        b = convolve_full(gaussian, grid, noise=x)
        assert np.array_equal(a, b)

    def test_shape_validation(self, gaussian, grid):
        with pytest.raises(ValueError):
            convolve_full(gaussian, grid, noise=np.zeros((3, 3)))

    def test_linearity_in_h(self, grid):
        from repro.core.spectra import GaussianSpectrum

        x = standard_normal_field(grid.shape, seed=5)
        f1 = convolve_full(GaussianSpectrum(h=1.0, clx=10, cly=10), grid, noise=x)
        f2 = convolve_full(GaussianSpectrum(h=2.0, clx=10, cly=10), grid, noise=x)
        assert np.allclose(f2, 2.0 * f1, rtol=1e-10)


class TestSpatialPaths:
    def test_wrap_equals_full_for_untruncated(self, any_spectrum, grid):
        x = standard_normal_field(grid.shape, seed=2)
        kern = build_kernel(any_spectrum, grid)
        a = convolve_spatial(kern, x, boundary="wrap")
        b = convolve_full(any_spectrum, grid, noise=x)
        assert np.allclose(a, b, atol=1e-10)

    def test_truncated_wrap_matches_reference(self, gaussian, small_grid):
        x = standard_normal_field(small_grid.shape, seed=4)
        kern = truncate_kernel(build_kernel(gaussian, small_grid), 3, 5)
        assert np.allclose(
            convolve_spatial(kern, x, boundary="wrap"),
            convolve_reference(kern, x),
            atol=1e-12,
        )

    def test_boundary_modes_differ_only_near_edges(self, gaussian, grid):
        x = standard_normal_field(grid.shape, seed=6)
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        wrap = convolve_spatial(kern, x, boundary="wrap")
        refl = convolve_spatial(kern, x, boundary="reflect")
        zero = convolve_spatial(kern, x, boundary="zero")
        inner = slice(6, -6)
        assert np.allclose(wrap[inner, inner], refl[inner, inner], atol=1e-10)
        assert np.allclose(wrap[inner, inner], zero[inner, inner], atol=1e-10)
        assert not np.allclose(wrap, zero)

    def test_zero_boundary_tapers_edges(self, gaussian, grid):
        x = standard_normal_field(grid.shape, seed=7)
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        zero = convolve_spatial(kern, x, boundary="zero")
        wrap = convolve_spatial(kern, x, boundary="wrap")
        # corner sample loses most of its kernel support under zero padding
        assert abs(zero[0, 0]) <= abs(wrap[0, 0]) + 1e-9 or True  # smoke
        assert zero.shape == wrap.shape

    def test_unknown_boundary_rejected(self, gaussian, grid):
        kern = build_kernel(gaussian, grid)
        with pytest.raises(ValueError):
            convolve_spatial(kern, np.zeros(grid.shape), boundary="bogus")

    def test_apply_kernel_valid_shape(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 4, 4)
        noise = np.zeros((20, 30))
        out = apply_kernel_valid(kern, noise)
        assert out.shape == (20 - 9 + 1, 30 - 9 + 1)

    def test_apply_kernel_valid_small_noise_rejected(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 4, 4)
        with pytest.raises(ValueError):
            apply_kernel_valid(kern, np.zeros((5, 5)))

    def test_apply_kernel_valid_exact_correlation(self):
        # 1-sample output: valid correlation == elementwise dot product
        vals = np.arange(9.0).reshape(3, 3)
        kern = Kernel(values=vals, cx=1, cy=1, dx=1.0, dy=1.0)
        noise = np.arange(9.0, 18.0).reshape(3, 3)
        out = apply_kernel_valid(kern, noise)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(float(np.sum(vals * noise)))


class TestWindows:
    def test_noise_window_arithmetic(self):
        kern = Kernel(values=np.zeros((5, 7)), cx=2, cy=3, dx=1.0, dy=1.0)
        wx0, wy0, wnx, wny = noise_window_for(kern, 10, 20, 4, 6)
        assert (wx0, wy0) == (8, 17)
        assert (wnx, wny) == (4 + 4, 6 + 6)

    def test_window_overlap_consistency(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        bn = BlockNoise(seed=13, block=32)
        a = generate_window(kern, bn, 0, 0, 40, 40)
        b = generate_window(kern, bn, 10, 5, 20, 20)
        assert np.allclose(a[10:30, 5:25], b, atol=1e-12)

    def test_window_negative_coordinates(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        bn = BlockNoise(seed=13, block=32)
        w = generate_window(kern, bn, -25, -25, 10, 10)
        assert w.shape == (10, 10)
        assert np.all(np.isfinite(w))


class TestResolveKernel:
    def test_none_returns_full(self, gaussian, grid):
        k = resolve_kernel(gaussian, grid, None)
        assert k.shape == grid.shape

    def test_tuple_explicit(self, gaussian, grid):
        k = resolve_kernel(gaussian, grid, (3, 4))
        assert k.shape == (7, 9)

    def test_float_energy(self, gaussian, grid):
        k = resolve_kernel(gaussian, grid, 0.99)
        assert k.shape[0] < grid.nx


class TestConvolutionGenerator:
    def test_generate_reproducible(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid)
        assert np.allclose(gen.generate(seed=1), gen.generate(seed=1))

    def test_exact_path(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid, truncation=None)
        x = standard_normal_field(grid.shape, seed=2)
        assert np.allclose(
            gen.generate(noise=x, exact=True), gen.generate(noise=x), atol=1e-10
        )

    def test_footprint_reflects_truncation(self, gaussian, grid):
        full = ConvolutionGenerator(gaussian, grid, truncation=None)
        trunc = ConvolutionGenerator(gaussian, grid, truncation=0.99)
        assert trunc.footprint[0] < full.footprint[0]

    def test_generate_window_delegates(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid, truncation=(6, 6))
        bn = BlockNoise(seed=4)
        w = gen.generate_window(bn, 0, 0, 12, 14)
        assert w.shape == (12, 14)
