"""Unit tests for the convolution method (eqn 36) and its execution paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convolution import (
    ENGINES,
    SPATIAL_KERNEL_AREA_MAX,
    ConvolutionGenerator,
    _apply_kernel_valid_fftconvolve,
    apply_kernel_valid,
    apply_kernel_valid_fft,
    apply_kernel_valid_spatial,
    convolve_full,
    convolve_reference,
    convolve_spatial,
    generate_window,
    noise_window_for,
    resolve_kernel,
    select_engine,
)
from repro.core.engine import KernelPlanCache, choose_block_shape
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.core.weights import Kernel, build_kernel, truncate_kernel


class TestConvolveFull:
    def test_matches_reference_formula(self, gaussian, small_grid):
        # eqn 36 with the full kernel (wrap) == FFT path
        x = standard_normal_field(small_grid.shape, seed=1)
        kern = build_kernel(gaussian, small_grid)
        ref = convolve_reference(kern, x)
        fast = convolve_full(gaussian, small_grid, noise=x)
        assert np.allclose(ref, fast, atol=1e-12)

    def test_seed_vs_noise_paths(self, gaussian, grid):
        a = convolve_full(gaussian, grid, seed=3)
        x = standard_normal_field(grid.shape, seed=3)
        b = convolve_full(gaussian, grid, noise=x)
        assert np.array_equal(a, b)

    def test_shape_validation(self, gaussian, grid):
        with pytest.raises(ValueError):
            convolve_full(gaussian, grid, noise=np.zeros((3, 3)))

    def test_linearity_in_h(self, grid):
        from repro.core.spectra import GaussianSpectrum

        x = standard_normal_field(grid.shape, seed=5)
        f1 = convolve_full(GaussianSpectrum(h=1.0, clx=10, cly=10), grid, noise=x)
        f2 = convolve_full(GaussianSpectrum(h=2.0, clx=10, cly=10), grid, noise=x)
        assert np.allclose(f2, 2.0 * f1, rtol=1e-10)


class TestSpatialPaths:
    def test_wrap_equals_full_for_untruncated(self, any_spectrum, grid):
        x = standard_normal_field(grid.shape, seed=2)
        kern = build_kernel(any_spectrum, grid)
        a = convolve_spatial(kern, x, boundary="wrap")
        b = convolve_full(any_spectrum, grid, noise=x)
        assert np.allclose(a, b, atol=1e-10)

    def test_truncated_wrap_matches_reference(self, gaussian, small_grid):
        x = standard_normal_field(small_grid.shape, seed=4)
        kern = truncate_kernel(build_kernel(gaussian, small_grid), 3, 5)
        assert np.allclose(
            convolve_spatial(kern, x, boundary="wrap"),
            convolve_reference(kern, x),
            atol=1e-12,
        )

    def test_boundary_modes_differ_only_near_edges(self, gaussian, grid):
        x = standard_normal_field(grid.shape, seed=6)
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        wrap = convolve_spatial(kern, x, boundary="wrap")
        refl = convolve_spatial(kern, x, boundary="reflect")
        zero = convolve_spatial(kern, x, boundary="zero")
        inner = slice(6, -6)
        assert np.allclose(wrap[inner, inner], refl[inner, inner], atol=1e-10)
        assert np.allclose(wrap[inner, inner], zero[inner, inner], atol=1e-10)
        assert not np.allclose(wrap, zero)

    def test_zero_boundary_tapers_edges(self, gaussian, grid):
        x = standard_normal_field(grid.shape, seed=7)
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        zero = convolve_spatial(kern, x, boundary="zero")
        wrap = convolve_spatial(kern, x, boundary="wrap")
        # corner sample loses most of its kernel support under zero padding
        assert abs(zero[0, 0]) <= abs(wrap[0, 0]) + 1e-9 or True  # smoke
        assert zero.shape == wrap.shape

    def test_unknown_boundary_rejected(self, gaussian, grid):
        kern = build_kernel(gaussian, grid)
        with pytest.raises(ValueError):
            convolve_spatial(kern, np.zeros(grid.shape), boundary="bogus")

    def test_apply_kernel_valid_shape(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 4, 4)
        noise = np.zeros((20, 30))
        out = apply_kernel_valid(kern, noise)
        assert out.shape == (20 - 9 + 1, 30 - 9 + 1)

    def test_apply_kernel_valid_small_noise_rejected(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 4, 4)
        with pytest.raises(ValueError):
            apply_kernel_valid(kern, np.zeros((5, 5)))

    def test_apply_kernel_valid_exact_correlation(self):
        # 1-sample output: valid correlation == elementwise dot product
        vals = np.arange(9.0).reshape(3, 3)
        kern = Kernel(values=vals, cx=1, cy=1, dx=1.0, dy=1.0)
        noise = np.arange(9.0, 18.0).reshape(3, 3)
        out = apply_kernel_valid(kern, noise)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(float(np.sum(vals * noise)))


class TestWindows:
    def test_noise_window_arithmetic(self):
        kern = Kernel(values=np.zeros((5, 7)), cx=2, cy=3, dx=1.0, dy=1.0)
        wx0, wy0, wnx, wny = noise_window_for(kern, 10, 20, 4, 6)
        assert (wx0, wy0) == (8, 17)
        assert (wnx, wny) == (4 + 4, 6 + 6)

    def test_window_overlap_consistency(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        bn = BlockNoise(seed=13, block=32)
        a = generate_window(kern, bn, 0, 0, 40, 40)
        b = generate_window(kern, bn, 10, 5, 20, 20)
        assert np.allclose(a[10:30, 5:25], b, atol=1e-12)

    def test_window_negative_coordinates(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 6, 6)
        bn = BlockNoise(seed=13, block=32)
        w = generate_window(kern, bn, -25, -25, 10, 10)
        assert w.shape == (10, 10)
        assert np.all(np.isfinite(w))


class TestResolveKernel:
    def test_none_returns_full(self, gaussian, grid):
        k = resolve_kernel(gaussian, grid, None)
        assert k.shape == grid.shape

    def test_tuple_explicit(self, gaussian, grid):
        k = resolve_kernel(gaussian, grid, (3, 4))
        assert k.shape == (7, 9)

    def test_float_energy(self, gaussian, grid):
        k = resolve_kernel(gaussian, grid, 0.99)
        assert k.shape[0] < grid.nx


def _family_spectrum(family: str, h: float, cl: float):
    if family == "gaussian":
        return GaussianSpectrum(h=h, clx=cl, cly=cl)
    if family == "exponential":
        return ExponentialSpectrum(h=h, clx=cl, cly=cl)
    return PowerLawSpectrum(h=h, clx=cl, cly=cl, order=2.0)


class TestEngineDispatch:
    def test_select_engine_threshold(self):
        # 7x7 = 49 is the last spatial kernel; anything bigger goes FFT
        assert select_engine((7, 7)) == "spatial"
        assert select_engine((1, 1)) == "spatial"
        assert select_engine((7, 8)) == "fft"
        assert select_engine((129, 129)) == "fft"
        assert SPATIAL_KERNEL_AREA_MAX == 7 * 7

    def test_auto_small_kernel_is_bitwise_spatial(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 3, 3)
        noise = standard_normal_field((30, 30), seed=8)
        assert np.array_equal(
            apply_kernel_valid(kern, noise, engine="auto"),
            apply_kernel_valid_spatial(kern, noise),
        )

    def test_auto_large_kernel_is_bitwise_fft(self, gaussian, grid):
        kern = truncate_kernel(build_kernel(gaussian, grid), 8, 8)
        noise = standard_normal_field((40, 40), seed=9)
        assert np.array_equal(
            apply_kernel_valid(kern, noise, engine="auto"),
            apply_kernel_valid_fft(kern, noise),
        )

    def test_unknown_engine_rejected(self, gaussian, grid):
        kern = build_kernel(gaussian, grid)
        with pytest.raises(ValueError, match="unknown engine"):
            apply_kernel_valid(kern, np.zeros(grid.shape), engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            ConvolutionGenerator(gaussian, grid, engine="warp")
        assert ENGINES == ("auto", "spatial", "fft")

    def test_generator_stores_engine(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid, engine="fft")
        assert gen.engine == "fft"
        assert "fft" in repr(gen)


class TestEngineEquivalence:
    """Satellite: property-based spatial/FFT interchangeability."""

    @settings(max_examples=15, deadline=None)
    @given(
        family=st.sampled_from(["gaussian", "exponential", "power_law"]),
        h=st.floats(0.05, 4.0),
        cl=st.floats(4.0, 24.0),
        n=st.integers(32, 72),
        energy=st.floats(0.95, 0.9999),
        out_x=st.integers(1, 40),
        out_y=st.integers(1, 40),
        seed=st.integers(0, 2**31),
    )
    def test_fft_matches_spatial_property(
        self, family, h, cl, n, energy, out_x, out_y, seed
    ):
        grid = Grid2D(nx=n, ny=n, lx=4.0 * n, ly=4.0 * n)
        kern = resolve_kernel(_family_spectrum(family, h, cl), grid, energy)
        kx, ky = kern.shape
        noise = np.random.default_rng(seed).standard_normal(
            (kx + out_x - 1, ky + out_y - 1)
        )
        a = apply_kernel_valid_spatial(kern, noise)
        b = apply_kernel_valid_fft(kern, noise, cache=KernelPlanCache())
        assert a.shape == b.shape == (out_x, out_y)
        assert np.max(np.abs(a - b)) <= 1e-10

    @settings(max_examples=10, deadline=None)
    @given(
        family=st.sampled_from(["gaussian", "exponential", "power_law"]),
        half_x=st.integers(0, 12),
        half_y=st.integers(0, 12),
        seed=st.integers(0, 2**31),
    )
    def test_fft_matches_spatial_explicit_truncation(
        self, family, half_x, half_y, seed
    ):
        grid = Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)
        kern = resolve_kernel(
            _family_spectrum(family, 1.3, 10.0), grid, (half_x, half_y)
        )
        noise = np.random.default_rng(seed).standard_normal(
            (kern.shape[0] + 20, kern.shape[1] + 20)
        )
        a = apply_kernel_valid_spatial(kern, noise)
        b = apply_kernel_valid_fft(kern, noise, cache=KernelPlanCache())
        assert np.max(np.abs(a - b)) <= 1e-10

    def test_fft_matches_legacy_fftconvolve(self, any_spectrum, grid):
        kern = resolve_kernel(any_spectrum, grid, 0.999)
        noise = standard_normal_field(
            (kern.shape[0] + 30, kern.shape[1] + 30), seed=21
        )
        legacy = _apply_kernel_valid_fftconvolve(kern, noise)
        fft = apply_kernel_valid_fft(kern, noise)
        assert np.max(np.abs(legacy - fft)) <= 1e-10

    def test_overlap_save_multiblock_matches_single_block(self, gaussian, grid):
        # Force many small blocks and compare against one whole-window FFT:
        # exercises the wrap-discard arithmetic across interior block seams.
        kern = resolve_kernel(gaussian, grid, (6, 6))  # 13x13
        noise = standard_normal_field((90, 83), seed=22)
        whole = apply_kernel_valid_fft(
            kern, noise, cache=KernelPlanCache(),
            block_shape=choose_block_shape(noise.shape, kern.shape),
        )
        blocked = apply_kernel_valid_fft(
            kern, noise, cache=KernelPlanCache(), block_shape=(16, 18)
        )
        spatial = apply_kernel_valid_spatial(kern, noise)
        assert np.max(np.abs(whole - spatial)) <= 1e-10
        assert np.max(np.abs(blocked - spatial)) <= 1e-10

    def test_block_smaller_than_kernel_rejected(self, gaussian, grid):
        kern = resolve_kernel(gaussian, grid, (6, 6))
        noise = np.zeros((40, 40))
        with pytest.raises(ValueError, match="block_shape"):
            apply_kernel_valid_fft(kern, noise, block_shape=(8, 40))

    @pytest.mark.parametrize("boundary", ["wrap", "reflect", "zero"])
    def test_convolve_spatial_engines_match(self, any_spectrum, grid, boundary):
        kern = resolve_kernel(any_spectrum, grid, 0.999)
        x = standard_normal_field(grid.shape, seed=23)
        a = convolve_spatial(kern, x, boundary=boundary, engine="spatial")
        b = convolve_spatial(kern, x, boundary=boundary, engine="fft")
        assert np.max(np.abs(a - b)) <= 1e-10

    def test_generate_window_engines_match(self, any_spectrum, grid):
        kern = resolve_kernel(any_spectrum, grid, 0.999)
        bn = BlockNoise(seed=24)
        a = generate_window(kern, bn, -7, 3, 33, 21, engine="spatial")
        b = generate_window(kern, bn, -7, 3, 33, 21, engine="fft")
        assert np.max(np.abs(a - b)) <= 1e-10

    def test_engine_individually_deterministic(self, gaussian, grid):
        kern = resolve_kernel(gaussian, grid, 0.999)
        noise = standard_normal_field(
            (kern.shape[0] + 10, kern.shape[1] + 10), seed=25
        )
        # fresh cache (miss) and warm cache (hit) must agree bit-for-bit
        cache = KernelPlanCache()
        first = apply_kernel_valid_fft(kern, noise, cache=cache)
        second = apply_kernel_valid_fft(kern, noise, cache=cache)
        other = apply_kernel_valid_fft(kern, noise, cache=KernelPlanCache())
        assert np.array_equal(first, second)
        assert np.array_equal(first, other)


class TestConvolutionGenerator:
    def test_generate_reproducible(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid)
        assert np.allclose(gen.generate(seed=1), gen.generate(seed=1))

    def test_exact_path(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid, truncation=None)
        x = standard_normal_field(grid.shape, seed=2)
        assert np.allclose(
            gen.generate(noise=x, exact=True), gen.generate(noise=x), atol=1e-10
        )

    def test_footprint_reflects_truncation(self, gaussian, grid):
        full = ConvolutionGenerator(gaussian, grid, truncation=None)
        trunc = ConvolutionGenerator(gaussian, grid, truncation=0.99)
        assert trunc.footprint[0] < full.footprint[0]

    def test_generate_window_delegates(self, gaussian, grid):
        gen = ConvolutionGenerator(gaussian, grid, truncation=(6, 6))
        bn = BlockNoise(seed=4)
        w = gen.generate_window(bn, 0, 0, 12, 14)
        assert w.shape == (12, 14)
