"""Tests for surface persistence (NPZ, ASCII grid) and rendering."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.surface import Surface
from repro.io.asciigrid import load_ascii_grid, save_ascii_grid
from repro.io.npzio import load_surface, save_surface
from repro.io.pgm import (
    ascii_preview,
    render_gray,
    render_hillshade,
    render_terrain,
    write_pgm,
    write_ppm,
)


@pytest.fixture
def surface(rng):
    grid = Grid2D(nx=16, ny=24, lx=32.0, ly=48.0)
    return Surface(
        heights=rng.standard_normal(grid.shape),
        grid=grid,
        origin=(5.0, -3.0),
        provenance={"method": "test", "params": {"h": 1.0}},
    )


class TestNpz:
    def test_round_trip(self, surface, tmp_path):
        path = tmp_path / "s.npz"
        save_surface(path, surface)
        loaded = load_surface(path)
        assert np.array_equal(loaded.heights, surface.heights)
        assert loaded.grid == surface.grid
        assert loaded.origin == surface.origin
        assert loaded.provenance == surface.provenance

    def test_version_check(self, surface, tmp_path):
        path = tmp_path / "s.npz"
        save_surface(path, surface)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.array(99)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_surface(path)


class TestAsciiGrid:
    def test_round_trip(self, rng, tmp_path):
        grid = Grid2D(nx=12, ny=8, lx=24.0, ly=16.0)  # square cells (2.0)
        s = Surface(heights=rng.standard_normal(grid.shape), grid=grid,
                    origin=(100.0, 200.0))
        path = tmp_path / "g.asc"
        save_ascii_grid(path, s, precision=10)
        loaded = load_ascii_grid(path)
        assert np.allclose(loaded.heights, s.heights, rtol=1e-8)
        assert loaded.origin == (100.0, 200.0)
        assert loaded.grid.dx == pytest.approx(2.0)

    def test_rejects_rectangular_cells(self, rng, tmp_path):
        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=16.0)
        s = Surface(heights=np.zeros(grid.shape), grid=grid)
        with pytest.raises(ValueError, match="square"):
            save_ascii_grid(tmp_path / "g.asc", s)

    def test_header_contents(self, rng, tmp_path):
        grid = Grid2D(nx=4, ny=6, lx=4.0, ly=6.0)
        s = Surface(heights=np.zeros(grid.shape), grid=grid)
        path = tmp_path / "g.asc"
        save_ascii_grid(path, s)
        lines = path.read_text().splitlines()
        assert lines[0].split() == ["ncols", "4"]
        assert lines[1].split() == ["nrows", "6"]

    def test_orientation(self, tmp_path):
        # value at (x=max, y=max) must land in the top-right of the file
        grid = Grid2D(nx=2, ny=2, lx=2.0, ly=2.0)
        h = np.array([[1.0, 2.0], [3.0, 4.0]])  # h[x, y]
        s = Surface(heights=h, grid=grid)
        path = tmp_path / "g.asc"
        save_ascii_grid(path, s)
        body = path.read_text().splitlines()[6:]
        first_row = [float(v) for v in body[0].split()]
        # northmost row (y max): heights [x=0,y=1], [x=1,y=1] = 2, 4
        assert first_row == [2.0, 4.0]


class TestRendering:
    def test_pgm_file_format(self, surface, tmp_path):
        path = tmp_path / "img.pgm"
        render_gray(surface, path=path)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n16 24\n"[:3])
        header, rest = raw.split(b"\n255\n", 1)
        dims = header.decode().split("\n")[1].split()
        assert [int(d) for d in dims] == [16, 24]  # width x height
        assert len(rest) == 16 * 24

    def test_ppm_file_format(self, surface, tmp_path):
        path = tmp_path / "img.ppm"
        render_terrain(surface, path=path)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n")
        _, rest = raw.split(b"\n255\n", 1)
        assert len(rest) == 16 * 24 * 3

    def test_gray_normalisation(self, surface):
        img = render_gray(surface)
        assert img.min() == pytest.approx(0.0)
        assert img.max() == pytest.approx(1.0)

    def test_gray_constant_surface(self):
        grid = Grid2D(nx=4, ny=4, lx=4.0, ly=4.0)
        s = Surface(heights=np.ones((4, 4)), grid=grid)
        img = render_gray(s)
        assert np.all(img == 0.0)

    def test_hillshade_flat_is_uniform(self):
        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0)
        s = Surface(heights=np.zeros((8, 8)), grid=grid)
        img = render_hillshade(s)
        assert np.allclose(img, img[0, 0])

    def test_hillshade_slope_orientation(self):
        # slope facing the light (azimuth 315 = NW... our axes: light from
        # -x +y quadrant) brighter than slope facing away
        grid = Grid2D(nx=32, ny=32, lx=32.0, ly=32.0)
        X, _ = grid.meshgrid()
        s_toward = Surface(heights=-X.copy(), grid=grid)
        s_away = Surface(heights=X.copy(), grid=grid)
        b_t = render_hillshade(s_toward, azimuth_deg=180.0).mean()
        b_a = render_hillshade(s_away, azimuth_deg=180.0).mean()
        assert b_t != pytest.approx(b_a)

    def test_write_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros(4))
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))

    def test_ascii_preview_dimensions(self, surface):
        art = ascii_preview(surface, width=20, height=6)
        lines = art.splitlines()
        assert len(lines) == 6
        assert all(len(l) == 20 for l in lines)

    def test_render_with_explicit_range(self, surface):
        img = render_gray(surface, vmin=-10.0, vmax=10.0)
        assert img.max() < 1.0 and img.min() > 0.0


class TestStreamedMetaAtomicity:
    """Regression: the streamed sidecar must be written atomically.

    ``stream_to_npy`` once wrote ``<path>.npy.meta.json`` with a plain
    ``write_text`` — a crash mid-write could leave a truncated sidecar
    next to a valid heights file, bricking ``load_streamed_surface``.
    It now goes through :func:`repro.io.atomic.atomic_write_json`.
    """

    @staticmethod
    def _gen(n=24):
        from repro.core.convolution import ConvolutionGenerator
        from repro.core.spectra import GaussianSpectrum

        return ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=4.0, cly=4.0),
            Grid2D(nx=n, ny=n, lx=float(n), ly=float(n)),
        )

    def test_interrupted_meta_write_preserves_old_sidecar(
        self, tmp_path, monkeypatch
    ):
        import json

        from repro.core.rng import BlockNoise
        from repro.io import atomic
        from repro.io.streamed import load_streamed_surface, stream_to_npy

        gen = self._gen()
        p = stream_to_npy(tmp_path / "s", gen, BlockNoise(seed=3),
                          total_nx=24, ny=24, strip_nx=8)
        meta_path = tmp_path / "s.npy.meta.json"
        before = meta_path.read_text()

        # crash exactly at the publish step: tmp written, rename fails
        real_replace = atomic.os.replace

        def exploding_replace(src, dst):
            if str(dst).endswith(".meta.json"):
                raise OSError("simulated crash during rename")
            return real_replace(src, dst)

        monkeypatch.setattr(atomic.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            stream_to_npy(tmp_path / "s", gen, BlockNoise(seed=99),
                          total_nx=24, ny=24, strip_nx=8)
        monkeypatch.undo()

        # the sidecar still holds the ORIGINAL, complete, parseable JSON
        assert meta_path.read_text() == before
        assert json.loads(before)["noise_seed"] == 3
        s = load_streamed_surface(p)
        assert s.provenance["noise_seed"] == 3

    def test_meta_is_complete_json_with_newline(self, tmp_path):
        from repro.core.rng import BlockNoise
        from repro.io.streamed import stream_to_npy
        import json

        stream_to_npy(tmp_path / "t", self._gen(), BlockNoise(seed=5),
                      total_nx=24, ny=24, strip_nx=24)
        text = (tmp_path / "t.npy.meta.json").read_text()
        assert text.endswith("\n")  # atomic_write_json's canonical form
        meta = json.loads(text)
        assert meta["total_nx"] == 24 and meta["noise_seed"] == 5
        # no stray tmp siblings left behind
        assert not list(tmp_path.glob("*.tmp"))


class TestDirectoryFsync:
    """The rename in an atomic write lives in the directory entry; a
    durable publish needs the *directory* fsynced after ``os.replace``."""

    def test_atomic_write_fsyncs_the_directory(self, tmp_path, monkeypatch):
        import os

        from repro.io import atomic

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            try:
                synced.append(os.fstat(fd).st_mode)
            except OSError:
                pass
            return real_fsync(fd)

        monkeypatch.setattr(atomic.os, "fsync", recording_fsync)
        atomic.atomic_write_bytes(tmp_path / "a.bin", b"payload")
        import stat

        assert any(stat.S_ISDIR(mode) for mode in synced)
        assert any(stat.S_ISREG(mode) for mode in synced)

    def test_npz_write_fsyncs_the_directory(self, tmp_path, monkeypatch):
        import os
        import stat

        import numpy as np

        from repro.io import atomic

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(os.fstat(fd).st_mode)
            return real_fsync(fd)

        monkeypatch.setattr(atomic.os, "fsync", recording_fsync)
        atomic.atomic_write_npz(tmp_path / "a.npz", x=np.arange(3))
        assert any(stat.S_ISDIR(mode) for mode in synced)

    def test_fsync_directory_tolerates_missing_path(self, tmp_path):
        from repro.io.atomic import fsync_directory

        fsync_directory(tmp_path / "no-such-dir")  # must not raise
