"""Unit tests for correlation-length estimation."""

import numpy as np
import pytest

from repro.core.convolution import convolve_full
from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.stats.correlation_length import (
    estimate_clx,
    estimate_cly,
    expected_one_over_e,
    fit_correlation_length,
    one_over_e_from_profile,
)


class TestProfileCrossing:
    def test_exact_exponential_profile(self):
        lags = np.linspace(0.0, 10.0, 101)
        rho = np.exp(-lags / 2.0)
        assert one_over_e_from_profile(lags, rho) == pytest.approx(2.0, abs=0.02)

    def test_interpolation_between_samples(self):
        lags = np.array([0.0, 1.0, 2.0])
        rho = np.array([1.0, 0.5, 0.25])
        out = one_over_e_from_profile(lags, rho)
        # 1/e = 0.3679 lies between samples 1 and 2
        assert 1.0 < out < 2.0

    def test_never_crossing_raises(self):
        lags = np.linspace(0, 5, 10)
        rho = np.ones(10)
        with pytest.raises(ValueError, match="never crosses"):
            one_over_e_from_profile(lags, rho)

    def test_validation(self):
        with pytest.raises(ValueError):
            one_over_e_from_profile(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            one_over_e_from_profile(
                np.array([0.0, 1.0]), np.array([-1.0, 0.1])
            )


class TestExpectedCrossing:
    def test_gaussian_is_cl(self):
        s = GaussianSpectrum(h=1.0, clx=13.0, cly=20.0)
        assert expected_one_over_e(s, "x") == pytest.approx(13.0, rel=1e-8)
        assert expected_one_over_e(s, "y") == pytest.approx(20.0, rel=1e-8)

    def test_exponential_is_cl(self):
        s = ExponentialSpectrum(h=2.0, clx=7.0, cly=7.0)
        assert expected_one_over_e(s, "x") == pytest.approx(7.0, rel=1e-8)

    def test_power_law_depends_on_order(self):
        lo = expected_one_over_e(PowerLawSpectrum(h=1, clx=10, cly=10, order=1.5))
        hi = expected_one_over_e(PowerLawSpectrum(h=1, clx=10, cly=10, order=6.0))
        assert lo != pytest.approx(hi, rel=0.05)
        for v in (lo, hi):
            assert 1.0 < v < 40.0


class TestFieldEstimators:
    def test_recovers_gaussian_cl(self):
        grid = Grid2D(nx=512, ny=512, lx=2048.0, ly=2048.0)
        s = GaussianSpectrum(h=1.0, clx=40.0, cly=40.0)
        f = convolve_full(s, grid, seed=8)
        assert estimate_clx(f, grid.dx) == pytest.approx(40.0, rel=0.15)
        assert estimate_cly(f, grid.dy) == pytest.approx(40.0, rel=0.15)

    def test_recovers_anisotropy(self):
        grid = Grid2D(nx=512, ny=512, lx=2048.0, ly=2048.0)
        s = GaussianSpectrum(h=1.0, clx=20.0, cly=60.0)
        f = convolve_full(s, grid, seed=9)
        clx = estimate_clx(f, grid.dx)
        cly = estimate_cly(f, grid.dy)
        assert cly > 2.0 * clx

    def test_axis_validation(self, rng):
        from repro.stats.correlation_length import one_over_e_length

        with pytest.raises(ValueError):
            one_over_e_length(rng.standard_normal((16, 16)), 1.0, axis="z")


class TestModelFit:
    def test_fit_recovers_parameters(self):
        grid = Grid2D(nx=384, ny=384, lx=1536.0, ly=1536.0)
        s = GaussianSpectrum(h=1.5, clx=30.0, cly=30.0)
        f = convolve_full(s, grid, seed=10)
        h_fit, cl_fit = fit_correlation_length(
            f, grid.dx, GaussianSpectrum(h=1.0, clx=20.0, cly=20.0)
        )
        assert h_fit == pytest.approx(1.5, rel=0.2)
        assert cl_fit == pytest.approx(30.0, rel=0.2)

    def test_fit_y_axis(self):
        grid = Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)
        s = ExponentialSpectrum(h=1.0, clx=25.0, cly=25.0)
        f = convolve_full(s, grid, seed=11)
        h_fit, cl_fit = fit_correlation_length(
            f, grid.dy, ExponentialSpectrum(h=1.0, clx=25.0, cly=25.0), axis="y"
        )
        assert cl_fit == pytest.approx(25.0, rel=0.4)
