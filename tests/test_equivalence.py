"""Experiment C1 at test scale: convolution method == direct DFT method.

The paper derives the convolution method *from* the direct DFT method
(eqns 30-36); with matched noise the two must coincide numerically, not
just statistically.  This is the strongest single check of the whole
spectral bookkeeping: any error in the weight normalisation, the index
folding, the Hermitian construction, or the kernel shift would break it.
"""

import numpy as np
import pytest

from repro.core.convolution import convolve_full
from repro.core.direct_dft import (
    direct_surface_from_array,
    hermitian_array_from_noise,
    hermitian_random_array,
    spectral_white_noise,
)
from repro.core.grid import Grid2D
from repro.core.rng import standard_normal_field


@pytest.mark.parametrize("shape", [(16, 16), (32, 64), (64, 32)])
def test_exact_equivalence_matched_noise(any_spectrum, shape):
    grid = Grid2D(nx=shape[0], ny=shape[1], lx=4.0 * shape[0], ly=4.0 * shape[1])
    x = standard_normal_field(grid.shape, seed=42)
    f_conv = convolve_full(any_spectrum, grid, noise=x)
    u = hermitian_array_from_noise(x)
    f_direct = direct_surface_from_array(any_spectrum, grid, u)
    scale = max(np.max(np.abs(f_conv)), 1e-30)
    assert np.max(np.abs(f_conv - f_direct)) < 1e-10 * scale


def test_equivalence_other_direction(gaussian):
    # start from a Hermitian array, recover its white noise, convolve
    grid = Grid2D(nx=32, ny=32, lx=128.0, ly=128.0)
    u = hermitian_random_array(grid, seed=3)
    white = spectral_white_noise(u)
    f_direct = direct_surface_from_array(gaussian, grid, u)
    # conv path needs the noise whose DFT-conj matches u:
    u2 = hermitian_array_from_noise(white)
    f2 = direct_surface_from_array(gaussian, grid, u2)
    # u2 differs from u by conjugation symmetry only => same surface
    assert np.allclose(f_direct, f2, atol=1e-9 * max(np.max(np.abs(f_direct)), 1))


def test_statistical_agreement_unmatched(gaussian):
    # without matched noise the two methods agree in distribution:
    # compare ensemble variances
    grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
    v_conv = np.mean(
        [convolve_full(gaussian, grid, seed=i).var() for i in range(20)]
    )
    from repro.core.direct_dft import direct_dft_surface

    v_dir = np.mean(
        [direct_dft_surface(gaussian, grid, seed=100 + i).var() for i in range(20)]
    )
    assert v_conv == pytest.approx(v_dir, rel=0.2)
