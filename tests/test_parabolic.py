"""Tests for the split-step parabolic-equation solver."""

import numpy as np
import pytest

from repro.propagation.parabolic import (
    PEGrid,
    PESolver,
    gaussian_aperture,
    gaussian_freespace_amplitude,
    propagation_factor,
)

FREQ = 300e6  # wavelength 1 m
K = 2.0 * np.pi


@pytest.fixture
def tall_grid():
    return PEGrid(z_max=400.0, nz=1024, dx=2.0)


class TestGridAndAperture:
    def test_grid_properties(self):
        g = PEGrid(z_max=100.0, nz=200, dx=1.0)
        assert g.dz == pytest.approx(0.5)
        assert g.z[0] == pytest.approx(0.5)
        assert g.z[-1] == pytest.approx(100.0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            PEGrid(z_max=0.0, nz=64, dx=1.0)
        with pytest.raises(ValueError):
            PEGrid(z_max=10.0, nz=8, dx=1.0)

    def test_aperture_peak_and_width(self, tall_grid):
        ap = gaussian_aperture(tall_grid, 100.0, 5.0)
        z = tall_grid.z
        assert abs(z[np.argmax(np.abs(ap))] - 100.0) < tall_grid.dz
        with pytest.raises(ValueError):
            gaussian_aperture(tall_grid, 100.0, 0.0)


class TestFreeSpace:
    def test_matches_analytic_beam(self, tall_grid):
        solver = PESolver(tall_grid, FREQ, terrain=lambda x: -1.0)
        ap = gaussian_aperture(tall_grid, 200.0, 4.0)
        u, _ = solver.march(ap, 0.0, 400.0)
        z = tall_grid.z
        ana = gaussian_freespace_amplitude(400.0, z, 200.0, 4.0, K)
        core = ana > 0.1 * ana.max()
        err = np.max(np.abs(np.abs(u)[core] - ana[core])) / ana.max()
        assert err < 0.01

    def test_beam_spreads(self):
        z = np.linspace(0.0, 100.0, 512)
        near = gaussian_freespace_amplitude(1.0, z, 50.0, 4.0, K)
        far = gaussian_freespace_amplitude(500.0, z, 50.0, 4.0, K)
        def width(a):
            return np.count_nonzero(a > 0.5 * a.max())
        assert width(far) > 2 * width(near)
        assert far.max() < near.max()

    def test_analytic_validation(self):
        with pytest.raises(ValueError):
            gaussian_freespace_amplitude(1.0, np.zeros(4), 0.0, -1.0, K)


class TestGroundEffects:
    def test_two_ray_lobing_positions(self, tall_grid):
        # PEC ground: nulls where the path difference is n*lambda,
        # i.e. z_null ~ n * lambda * x / (2 h_tx)
        solver = PESolver(tall_grid, FREQ, terrain=None)
        ap = gaussian_aperture(tall_grid, 20.0, 4.0)
        u, _ = solver.march(ap, 0.0, 1000.0)
        z = tall_grid.z
        pf = np.abs(u) / np.maximum(
            gaussian_freespace_amplitude(1000.0, z, 20.0, 4.0, K), 1e-12
        )
        band = (z > 5.0) & (z < 80.0)
        z_band, pf_band = z[band], pf[band]
        z_null = z_band[np.argmin(np.abs(pf_band))]
        assert z_null == pytest.approx(25.0, abs=2.0)
        z_peak = z_band[np.argmax(pf_band)]
        assert min(abs(z_peak - 12.5), abs(z_peak - 37.5)) < 2.5
        assert pf_band.max() > 1.6  # near-coherent doubling

    def test_hill_shadowing(self, tall_grid):
        hill = lambda x: 60.0 * np.exp(-(((x - 500.0) / 50.0) ** 2))  # noqa: E731
        solver = PESolver(tall_grid, FREQ, terrain=hill)
        pf_shadow = propagation_factor(solver, 1000.0, tx_height=20.0,
                                       rx_height=20.0, beamwidth=4.0)
        flat = PESolver(tall_grid, FREQ, terrain=None)
        pf_flat = propagation_factor(flat, 1000.0, tx_height=20.0,
                                     rx_height=20.0, beamwidth=4.0)
        assert pf_shadow < 0.5 * pf_flat

    def test_diffraction_fills_shadow(self, tall_grid):
        # unlike ray tracing, the PE puts nonzero field behind the hill
        hill = lambda x: 60.0 * np.exp(-(((x - 500.0) / 50.0) ** 2))  # noqa: E731
        solver = PESolver(tall_grid, FREQ, terrain=hill)
        pf = propagation_factor(solver, 1000.0, tx_height=20.0,
                                rx_height=20.0, beamwidth=4.0)
        assert pf > 1e-4


class TestInterface:
    def test_march_validation(self, tall_grid):
        solver = PESolver(tall_grid, FREQ)
        with pytest.raises(ValueError):
            solver.march(np.zeros(10, complex), 0.0, 100.0)
        ap = gaussian_aperture(tall_grid, 50.0, 4.0)
        with pytest.raises(ValueError):
            solver.march(ap, 10.0, 10.0)

    def test_snapshots(self, tall_grid):
        solver = PESolver(tall_grid, FREQ)
        ap = gaussian_aperture(tall_grid, 50.0, 4.0)
        _, snaps = solver.march(ap, 0.0, 40.0, collect_every=5)
        assert snaps is not None
        assert snaps.shape == (4, tall_grid.nz)

    def test_field_at_bounds(self, tall_grid):
        solver = PESolver(tall_grid, FREQ)
        ap = gaussian_aperture(tall_grid, 50.0, 4.0)
        u, _ = solver.march(ap, 0.0, 10.0)
        assert isinstance(solver.field_at(u, 50.0), complex)
        with pytest.raises(ValueError):
            solver.field_at(u, 1e9)

    def test_solver_validation(self, tall_grid):
        with pytest.raises(ValueError):
            PESolver(tall_grid, FREQ, absorber_fraction=0.95)
