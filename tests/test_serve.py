"""End-to-end and unit tests for the ``repro.serve`` front door.

Tier-1 (``serve`` marker): exercises the asyncio HTTP server over real
sockets — submit a spec, poll the job, range-read the result — plus the
HTTP-free :class:`~repro.serve.service.SurfaceService` core and the
shared-spectrum batcher.  All assertions are on determinism (served
bytes == direct generation bytes), never timing.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.spec import GenerationSpec
from repro.dist.status import STATUS_SCHEMA
from repro.parallel.executor import generate_tiled
from repro.serve import (
    HttpError,
    ServeConfig,
    SurfaceService,
    TenantBusy,
    parse_range,
    start_server,
)

pytestmark = pytest.mark.serve

DEADLINE_S = 60.0


def spec_doc(h=1.0, seed=5, n=64, tile=None, **extra):
    doc = {
        "schema": "repro.spec/v1",
        "generator": {
            "kind": "convolution",
            "spectrum": {"kind": "gaussian", "h": h, "clx": 8.0, "cly": 8.0},
            "grid": {"nx": n, "ny": n, "lx": float(n), "ly": float(n)},
            "truncation": 0.9999,
            "engine": "auto",
            "dtype": "float64",
        },
        "seed": seed,
    }
    if tile is not None:
        doc["tile"] = tile
    doc.update(extra)
    return doc


def reference_window(doc):
    """Direct solo generation of the spec's (normalised) window."""
    spec = GenerationSpec.from_dict(doc)
    gen = spec.build_generator()
    nx, ny = spec.grid_shape
    return np.asarray(gen.generate_window(spec.noise(), 0, 0, nx, ny))


def wait_complete(get_doc, job_id):
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        doc = get_doc(job_id)
        if doc["state"] in ("complete", "failed"):
            return doc
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish in {DEADLINE_S}s")


class TestParseRange:
    def test_no_header(self):
        assert parse_range(None, 100) is None

    @pytest.mark.parametrize("header, size, expect", [
        ("bytes=0-127", 1000, (0, 128)),
        ("bytes=500-", 1000, (500, 500)),
        ("bytes=-100", 1000, (900, 100)),
        ("bytes=-2000", 1000, (0, 1000)),     # suffix longer than entity
        ("bytes=0-99999", 100, (0, 100)),     # end clamped
        ("bytes=99-99", 100, (99, 1)),
    ])
    def test_satisfiable(self, header, size, expect):
        assert parse_range(header, size) == expect

    @pytest.mark.parametrize("header", [
        "items=0-1",            # unknown unit
        "bytes=0-1,5-6",        # multipart
        "bytes=5",              # no dash
        "bytes=abc-def",
        "bytes=100-",           # at/after end
        "bytes=9-5",            # inverted
        "bytes=-0",             # empty suffix
    ])
    def test_unsatisfiable_raises_416(self, header):
        with pytest.raises(HttpError) as exc:
            parse_range(header, 100)
        assert exc.value.status == 416


@pytest.fixture
def service(tmp_path):
    svc = SurfaceService(ServeConfig(data_dir=tmp_path / "serve"))
    yield svc
    svc.close()


class TestService:
    def test_small_job_bit_identical(self, service):
        doc = spec_doc(seed=11)
        job = service.submit(doc)
        assert job["state"] in ("queued", "running", "complete")
        done = wait_complete(service.job_doc, job["id"])
        assert done["state"] == "complete", done["error"]
        assert done["result"]["kind"] == "inline"
        body = service.result_npy(job["id"])
        served = np.load(io.BytesIO(body))
        assert served.tobytes() == reference_window(doc).tobytes()

    def test_invalid_spec_names_field(self, service):
        from repro.core.spec import SpecError

        doc = spec_doc()
        doc["generator"]["grid"]["nx"] = 0
        with pytest.raises(SpecError) as exc:
            service.submit(doc)
        assert exc.value.field == "generator.grid.nx"

    def test_faults_rejected(self, service):
        from repro.core.spec import SpecError

        with pytest.raises(SpecError, match="fault"):
            service.submit(spec_doc(faults=[{"kind": "crash"}]))

    def test_unknown_job_raises_keyerror(self, service):
        with pytest.raises(KeyError):
            service.job_doc("nope")

    def test_status_doc_schema(self, service):
        doc = service.status_doc()
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["source"] == "serve"
        assert set(doc["serve"]["jobs"]) == {"queued", "running",
                                             "complete", "failed"}


class TestTenantLimits:
    def test_zero_limit_rejects_with_retry_after(self, tmp_path):
        svc = SurfaceService(ServeConfig(
            data_dir=tmp_path / "serve",
            tenant_max_active=0, tenant_max_queued=0, retry_after_s=2.5,
        ))
        try:
            with pytest.raises(TenantBusy) as exc:
                svc.submit(spec_doc())
            assert exc.value.retry_after_s == 2.5
            assert exc.value.tenant == "public"
        finally:
            svc.close()

    def test_limits_are_per_tenant(self, tmp_path):
        # long linger keeps small jobs "running", pinning the inflight
        # count without any timing assumptions
        svc = SurfaceService(ServeConfig(
            data_dir=tmp_path / "serve", batch_linger_s=30.0,
            tenant_max_active=1, tenant_max_queued=0,
        ))
        try:
            svc.submit(spec_doc(seed=1), tenant="alice")
            with pytest.raises(TenantBusy):
                svc.submit(spec_doc(seed=2), tenant="alice")
            # a different tenant is admitted despite alice being full
            svc.submit(spec_doc(seed=3), tenant="bob")
            doc = svc.status_doc()
            assert doc["serve"]["tenants"]["alice"]["inflight"] == 1
            assert doc["serve"]["tenants"]["bob"]["inflight"] == 1
        finally:
            svc.close()


class TestBatching:
    def test_shared_spectrum_requests_batch_and_match_solo(self, tmp_path):
        """8 concurrent same-noise requests -> one engine pass, and every
        reply is bit-identical to solo windowed generation."""
        svc = SurfaceService(ServeConfig(
            data_dir=tmp_path / "serve", batch_linger_s=0.5,
            tenant_max_active=8, tenant_max_queued=8,
        ))
        try:
            h_values = [0.5, 1.0, 1.5, 2.0]
            docs = [spec_doc(h=h_values[i % 4], seed=7) for i in range(8)]
            ids = [svc.submit(doc)["id"] for doc in docs]
            done = [wait_complete(svc.job_doc, i) for i in ids]
            for doc in done:
                assert doc["state"] == "complete", doc["error"]
            # all 8 landed in one group (same seed/window/footprint),
            # and value-equal kernels collapsed to 4 distinct passes
            for doc in done:
                assert doc["result"]["batched_with"] == 8
                assert doc["result"]["distinct_kernels"] == 4
            for req, job_id in zip(docs, ids):
                served = np.load(io.BytesIO(svc.result_npy(job_id)))
                assert served.tobytes() == reference_window(req).tobytes()
        finally:
            svc.close()

    def test_different_seeds_do_not_share_bytes(self, tmp_path):
        svc = SurfaceService(ServeConfig(
            data_dir=tmp_path / "serve", batch_linger_s=0.2,
        ))
        try:
            a = svc.submit(spec_doc(seed=1))["id"]
            b = svc.submit(spec_doc(seed=2))["id"]
            wait_complete(svc.job_doc, a)
            wait_complete(svc.job_doc, b)
            assert (service_bytes(svc, a) != service_bytes(svc, b))
        finally:
            svc.close()


def service_bytes(svc, job_id):
    return np.load(io.BytesIO(svc.result_npy(job_id))).tobytes()


# -- HTTP end-to-end ----------------------------------------------------


class _Harness:
    """Run the asyncio server on a background loop; client via urllib."""

    def __init__(self, config):
        import asyncio

        self.service = SurfaceService(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self.server = asyncio.run_coroutine_threadsafe(
            start_server(self.service), self.loop
        ).result(10)
        self.url = f"http://{self.server.host}:{self.server.port}"

    def close(self):
        import asyncio

        asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()
        self.service.close()

    def request(self, path, method="GET", body=None, headers=None):
        req = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, dict(exc.headers), exc.read()

    def get_json(self, path):
        status, _, body = self.request(path)
        return status, json.loads(body)

    def submit(self, doc, tenant=None):
        headers = {"Content-Type": "application/json"}
        if tenant:
            headers["X-Tenant"] = tenant
        return self.request("/v1/jobs", method="POST",
                            body=json.dumps(doc).encode(), headers=headers)

    def poll(self, job_id):
        def get_doc(i):
            status, doc = self.get_json(f"/v1/jobs/{i}")
            assert status == 200
            return doc
        return wait_complete(get_doc, job_id)


@pytest.fixture
def harness(tmp_path):
    h = _Harness(ServeConfig(data_dir=tmp_path / "serve",
                             store_threshold_elems=0))
    yield h
    h.close()


class TestHttp:
    def test_health(self, harness):
        status, doc = harness.get_json("/health")
        assert (status, doc) == (200, {"ok": True})

    def test_unknown_route_404(self, harness):
        status, _, _ = harness.request("/nope")
        assert status == 404
        status, _, _ = harness.request("/v1/jobs/zzz")
        assert status == 404

    def test_method_gate(self, harness):
        status, _, _ = harness.request("/health", method="PUT")
        assert status == 405
        status, _, _ = harness.request("/status", method="POST",
                                       body=b"{}")
        assert status == 405

    def test_submit_poll_result_roundtrip(self, harness):
        doc = spec_doc(seed=21)
        status, headers, body = harness.submit(doc)
        assert status == 202
        job = json.loads(body)
        final = harness.poll(job["id"])
        assert final["state"] == "complete", final["error"]
        status, _, npy = harness.request(f"/v1/jobs/{job['id']}/result")
        assert status == 200
        served = np.load(io.BytesIO(npy))
        assert served.tobytes() == reference_window(doc).tobytes()

    def test_submit_bad_spec_is_400_with_field(self, harness):
        doc = spec_doc()
        doc["generator"]["grid"]["nx"] = 0
        status, _, body = harness.submit(doc)
        assert status == 400
        err = json.loads(body)
        assert err["field"] == "generator.grid.nx"

    def test_submit_garbage_is_400(self, harness):
        status, _, _ = harness.request("/v1/jobs", method="POST",
                                       body=b"{nope")
        assert status == 400
        status, _, _ = harness.request("/v1/jobs", method="POST")
        assert status == 400

    def test_store_job_chunks_bit_identical(self, harness):
        """Multi-tile job streams through a store; the chunks reassemble
        to exactly the generate_tiled bytes."""
        doc = spec_doc(seed=33, tile=32)
        status, _, body = harness.submit(doc)
        assert status == 202
        job = json.loads(body)
        final = harness.poll(job["id"])
        assert final["state"] == "complete", final["error"]
        assert final["result"]["kind"] == "store"

        status, meta = harness.get_json(f"/v1/jobs/{job['id']}/chunks")
        assert status == 200
        assert meta["shape"] == [64, 64]
        assert meta["chunks_total"] == 4

        out = np.zeros((64, 64))
        for index in range(meta["chunks_total"]):
            status, headers, raw = harness.request(
                f"/v1/jobs/{job['id']}/chunks/{index}"
            )
            assert status == 200
            x0 = int(headers["X-Chunk-X0"])
            y0 = int(headers["X-Chunk-Y0"])
            nx = int(headers["X-Chunk-NX"])
            ny = int(headers["X-Chunk-NY"])
            chunk = np.frombuffer(raw, dtype="<f8").reshape(nx, ny)
            out[x0:x0 + nx, y0:y0 + ny] = chunk

        spec = GenerationSpec.from_dict(doc)
        ref = generate_tiled(spec.build_generator(), spec.noise(),
                             spec.tile_plan())
        assert out.tobytes() == np.asarray(ref.heights).tobytes()

        # /result refuses to materialise store-backed jobs
        status, _, body = harness.request(f"/v1/jobs/{job['id']}/result")
        assert status == 404
        assert "chunks" in json.loads(body)["error"]

    def test_heights_range_read(self, harness):
        doc = spec_doc(seed=34, tile=32)
        _, _, body = harness.submit(doc)
        job = json.loads(body)
        harness.poll(job["id"])

        status, headers, full = harness.request(
            f"/v1/jobs/{job['id']}/heights"
        )
        assert status == 200
        assert full.startswith(b"\x93NUMPY")  # raw heights.npy

        status, headers, part = harness.request(
            f"/v1/jobs/{job['id']}/heights",
            headers={"Range": "bytes=0-127"},
        )
        assert status == 206
        assert headers["Content-Range"] == f"bytes 0-127/{len(full)}"
        assert part == full[:128]

        status, headers, tail = harness.request(
            f"/v1/jobs/{job['id']}/heights",
            headers={"Range": "bytes=-64"},
        )
        assert status == 206
        assert tail == full[-64:]

        status, _, _ = harness.request(
            f"/v1/jobs/{job['id']}/heights",
            headers={"Range": f"bytes={len(full)}-"},
        )
        assert status == 416

    def test_chunk_of_incomplete_job_is_409(self, harness):
        # chunks endpoint on an inline (storeless) job 404s instead
        doc = spec_doc(seed=35)
        _, _, body = harness.submit(doc)
        job = json.loads(body)
        harness.poll(job["id"])
        status, _, _ = harness.request(f"/v1/jobs/{job['id']}/chunks")
        assert status == 404

    def test_tenant_flood_gets_429(self, tmp_path):
        h = _Harness(ServeConfig(
            data_dir=tmp_path / "serve",
            tenant_max_active=0, tenant_max_queued=0, retry_after_s=3.0,
        ))
        try:
            status, headers, body = h.submit(spec_doc(), tenant="flood")
            assert status == 429
            assert headers["Retry-After"] == "3"
            err = json.loads(body)
            assert err["tenant"] == "flood"
        finally:
            h.close()

    def test_status_metrics_and_list(self, harness):
        doc = spec_doc(seed=36)
        _, _, body = harness.submit(doc)
        job = json.loads(body)
        harness.poll(job["id"])

        status, sdoc = harness.get_json("/status")
        assert status == 200
        assert sdoc["schema"] == STATUS_SCHEMA
        assert sdoc["serve"]["jobs"]["complete"] >= 1

        status, jdoc = harness.get_json(f"/v1/jobs/{job['id']}/status")
        assert status == 200
        assert jdoc["schema"] == STATUS_SCHEMA
        assert jdoc["source"] == "serve"
        assert jdoc["state"] == "complete"

        status, listing = harness.get_json("/v1/jobs")
        assert status == 200
        assert any(j["id"] == job["id"] for j in listing["jobs"])

        status, _, text = harness.request("/metrics")
        assert status == 200
        assert b"repro_serve_jobs_complete" in text


class TestVerifyEndpoint:
    """``GET /v1/jobs/{id}/verify``: the serve front door returns the
    same ``repro.verify/v1`` report the offline verifier produces."""

    def _sa_doc(self, seed=37, n=128):
        doc = spec_doc(seed=seed, n=n)
        doc["generator"]["spectrum"] = {
            "kind": "self_affine", "sigma": 1.0, "hurst": 0.8, "qr": 0.4,
        }
        return doc

    def test_verify_doc_inline(self, service):
        from repro.verify import VERIFY_SCHEMA

        job = service.submit(self._sa_doc())
        wait_complete(service.job_doc, job["id"])
        doc = service.verify_doc(job["id"])
        assert doc["schema"] == VERIFY_SCHEMA
        assert doc["id"] == job["id"]
        assert doc["passed"] is True
        assert {m["name"] for m in doc["metrics"]} >= {
            "rms_height", "hurst_fit", "qr_plateau"}
        # second call returns the cached document, not a recomputation
        assert service.verify_doc(job["id"]) is doc

    def test_verify_doc_unknown_job(self, service):
        with pytest.raises(KeyError):
            service.verify_doc("nope")

    def test_http_verify_store_backed(self, harness):
        from repro.verify import REPORT_NAME, VERIFY_SCHEMA, load_report

        _, _, body = harness.submit(self._sa_doc(seed=38, n=640))
        job = json.loads(body)
        harness.poll(job["id"])

        status, doc = harness.get_json(f"/v1/jobs/{job['id']}/verify")
        assert status == 200
        assert doc["schema"] == VERIFY_SCHEMA
        assert doc["passed"] is True
        assert doc["surface"]["store"]  # verified out of core

        # the report is checkpointed next to the job manifest and equals
        # the served document (minus the job id the server stamps on)
        record = harness.service._jobs[job["id"]]
        persisted = load_report(record.checkpoint_dir / REPORT_NAME)
        served = dict(doc)
        served.pop("id")
        assert persisted.to_dict() == served

        # cached on repeat
        status2, doc2 = harness.get_json(f"/v1/jobs/{job['id']}/verify")
        assert (status2, doc2) == (200, doc)

    def test_http_verify_incomplete_is_409(self, harness):
        _, _, body = harness.submit(self._sa_doc(seed=39))
        job = json.loads(body)
        harness.poll(job["id"])
        record = harness.service._jobs[job["id"]]
        with harness.service._lock:
            record.state = "running"
        try:
            status, headers, _ = harness.request(
                f"/v1/jobs/{job['id']}/verify")
            assert status == 409
            assert "Retry-After" in headers
        finally:
            with harness.service._lock:
                record.state = "complete"
        status, doc = harness.get_json(f"/v1/jobs/{job['id']}/verify")
        assert (status, doc["passed"]) == (200, True)

    def test_http_verify_unknown_is_404(self, harness):
        status, _, _ = harness.request("/v1/jobs/nope/verify")
        assert status == 404
