"""Tests for the batched multi-region valid-correlation engine.

Covers ``apply_kernels_valid`` (one forward FFT per noise block shared
by every region's kernel), the ``WeightMap.support`` active-set query,
the pruning bit-transparency contract (skipping a zero-weight region
never changes the surviving outputs), and the provenance the tiled
executor aggregates from it.
"""

import numpy as np
import pytest

from repro.core.convolution import (
    apply_kernel_valid_fft,
    apply_kernel_valid_spatial,
    apply_kernels_valid,
    batched_noise_window_for,
    noise_window_for,
    resolve_kernel,
)
from repro.core.engine import BatchStats, common_margins
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import (
    InhomogeneousGenerator,
    blend_reference,
    kernel_stack,
)
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.fields.continuous import ContinuousGenerator
from repro.fields.parameter_map import LayeredLayout, RegionSpec, WeightMap
from repro.fields.regions import Circle
from repro.parallel.executor import generate_tiled
from repro.parallel.tiles import TilePlan


@pytest.fixture
def grid():
    return Grid2D(nx=48, ny=48, lx=48.0, ly=48.0)


@pytest.fixture
def kernels(grid):
    """Three kernels with deliberately different supports/centres."""
    return [
        resolve_kernel(GaussianSpectrum(h=1.0, clx=4.0, cly=4.0), grid, (5, 5)),
        resolve_kernel(ExponentialSpectrum(h=0.7, clx=3.0, cly=3.0), grid,
                       (7, 4)),
        resolve_kernel(GaussianSpectrum(h=2.0, clx=6.0, cly=2.0), grid,
                       (3, 6)),
    ]


def _per_kernel_expected(kernels, noise, margins=None):
    """Per-kernel spatial correlations on each kernel's own sub-window."""
    lx, rx, ly, ry = (common_margins(kernels) if margins is None
                      else margins)
    onx = noise.shape[0] - (lx + rx)
    ony = noise.shape[1] - (ly + ry)
    out = []
    for k in kernels:
        ox, oy = lx - k.cx, ly - k.cy
        sub = noise[ox : ox + onx + k.shape[0] - 1,
                    oy : oy + ony + k.shape[1] - 1]
        out.append(apply_kernel_valid_spatial(k, sub))
    return out


class TestCommonMargins:
    def test_dominates_every_kernel(self, kernels):
        lx, rx, ly, ry = common_margins(kernels)
        for k in kernels:
            assert k.cx <= lx and k.shape[0] - 1 - k.cx <= rx
            assert k.cy <= ly and k.shape[1] - 1 - k.cy <= ry
        # tight: each margin is achieved by some kernel
        assert lx == max(k.cx for k in kernels)
        assert ry == max(k.shape[1] - 1 - k.cy for k in kernels)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            common_margins([])


class TestBatchedWindow:
    def test_union_of_per_kernel_windows(self, kernels):
        wx0, wy0, wnx, wny = batched_noise_window_for(kernels, 3, -2, 10, 12)
        singles = [noise_window_for(k, 3, -2, 10, 12) for k in kernels]
        assert wx0 == min(s[0] for s in singles)
        assert wy0 == min(s[1] for s in singles)
        assert wx0 + wnx == max(s[0] + s[2] for s in singles)
        assert wy0 + wny == max(s[1] + s[3] for s in singles)

    def test_margins_override(self, kernels):
        margins = tuple(m + 2 for m in common_margins(kernels))
        wx0, wy0, wnx, wny = batched_noise_window_for(
            kernels, 0, 0, 8, 8, margins=margins
        )
        assert (wx0, wy0) == (-margins[0], -margins[2])
        assert (wnx, wny) == (8 + margins[0] + margins[1],
                              8 + margins[2] + margins[3])


class TestApplyKernelsValid:
    def test_spatial_matches_per_kernel_exactly(self, kernels):
        noise = standard_normal_field((40, 44), seed=11)
        got = apply_kernels_valid(kernels, noise, engine="spatial")
        for g, e in zip(got, _per_kernel_expected(kernels, noise)):
            assert np.array_equal(g, e)

    def test_fft_matches_spatial(self, kernels):
        noise = standard_normal_field((40, 44), seed=12)
        fft = apply_kernels_valid(kernels, noise, engine="fft")
        spatial = apply_kernels_valid(kernels, noise, engine="spatial")
        for a, b in zip(fft, spatial):
            assert np.allclose(a, b, atol=1e-12)

    def test_single_kernel_bit_identical_to_fft_path(self, kernels):
        k = kernels[0]
        noise = standard_normal_field((36, 36), seed=13)
        batched = apply_kernels_valid([k], noise, engine="fft")[0]
        assert np.array_equal(batched, apply_kernel_valid_fft(k, noise))

    def test_empty_batch(self):
        assert apply_kernels_valid([], np.zeros((8, 8))) == []

    def test_active_mask_prunes_to_none(self, kernels):
        noise = standard_normal_field((40, 40), seed=14)
        full = apply_kernels_valid(kernels, noise, engine="fft")
        pruned = apply_kernels_valid(
            kernels, noise, active=np.array([True, False, True]), engine="fft"
        )
        assert pruned[1] is None
        # bit-transparent: surviving outputs identical to the unpruned run
        assert np.array_equal(pruned[0], full[0])
        assert np.array_equal(pruned[2], full[2])

    def test_active_index_sequence(self, kernels):
        noise = standard_normal_field((40, 40), seed=14)
        by_mask = apply_kernels_valid(
            kernels, noise, active=np.array([False, True, False])
        )
        by_index = apply_kernels_valid(kernels, noise, active=[1])
        assert by_mask[0] is None and by_index[0] is None
        assert np.array_equal(by_mask[1], by_index[1])

    def test_stats_counters_single_block(self, kernels):
        noise = standard_normal_field((40, 40), seed=15)
        stats = BatchStats()
        apply_kernels_valid(kernels, noise, active=[0, 2], engine="fft",
                            stats=stats)
        assert stats.kernels_active == 2
        assert stats.kernels_skipped == 1
        assert stats.blocks == stats.forward_ffts
        # one inverse per active kernel per block — never one per pair
        assert stats.inverse_ffts == 2 * stats.blocks

    def test_bad_mask_shape_rejected(self, kernels):
        with pytest.raises(ValueError, match="active mask shape"):
            apply_kernels_valid(
                kernels, np.zeros((40, 40)), active=np.array([True, False])
            )

    def test_margins_too_small_rejected(self, kernels):
        with pytest.raises(ValueError, match="margins"):
            apply_kernels_valid(
                kernels, np.zeros((40, 40)), margins=(1, 1, 1, 1)
            )

    def test_noise_smaller_than_footprint_rejected(self, kernels):
        lx, rx, ly, ry = common_margins(kernels)
        with pytest.raises(ValueError):
            apply_kernels_valid(kernels, np.zeros((lx + rx, ly + ry + 4)))

    def test_wider_margins_shift_not_change_values(self, kernels):
        base = common_margins(kernels)
        wide = (base[0] + 3, base[1] + 1, base[2] + 2, base[3] + 4)
        noise = standard_normal_field((46, 46), seed=16)
        inner = noise[3 : 46 - 1, 2 : 46 - 4]
        got_wide = apply_kernels_valid(kernels, noise, margins=wide,
                                       engine="spatial")
        got_base = apply_kernels_valid(kernels, inner, margins=base,
                                       engine="spatial")
        for a, b in zip(got_wide, got_base):
            assert np.array_equal(a, b)


class TestWeightMapSupport:
    def _wm(self):
        w = np.zeros((3, 6, 6))
        w[0] = 1.0
        w[1, :2, :2] = 0.5
        w[0, :2, :2] = 0.5
        return WeightMap(
            spectra=[GaussianSpectrum(h=1.0, clx=2.0, cly=2.0)] * 3,
            weights=w,
        )

    def test_full_map_support(self):
        assert self._wm().support().tolist() == [True, True, False]

    def test_bbox_window(self):
        wm = self._wm()
        assert wm.support(bbox=(3, 3, 3, 3)).tolist() == [True, False, False]
        assert wm.active_set(bbox=(0, 0, 2, 2)).tolist() == [0, 1]

    def test_bad_bbox_rejected(self):
        with pytest.raises(ValueError):
            self._wm().support(bbox=(4, 4, 4, 4))


@pytest.fixture
def patch_layout():
    """Background + one localised patch: windows far from the circle see
    only the background region."""
    return LayeredLayout(
        background=GaussianSpectrum(h=1.0, clx=3.0, cly=3.0),
        patches=[RegionSpec(Circle(cx=8.0, cy=8.0, radius=4.0),
                            ExponentialSpectrum(h=2.0, clx=2.0, cly=2.0),
                            half_width=2.0)],
    )


class TestGeneratorPruning:
    def test_windows_bit_identical_with_and_without_pruning(
        self, patch_layout, grid
    ):
        kwargs = dict(truncation=(5, 5), engine="fft")
        gen_p = InhomogeneousGenerator(patch_layout, grid, prune=True,
                                       **kwargs)
        gen_u = InhomogeneousGenerator(patch_layout, grid, prune=False,
                                       **kwargs)
        noise = BlockNoise(seed=5)
        for (x0, y0) in [(0, 0), (16, 16), (32, 0), (-8, 40)]:
            a = gen_p.generate_window(noise, x0, y0, 16, 16)
            b = gen_u.generate_window(noise, x0, y0, 16, 16)
            assert np.array_equal(a.heights, b.heights)

    def test_far_window_convolves_exactly_one_kernel(self, patch_layout, grid):
        gen = InhomogeneousGenerator(patch_layout, grid, truncation=(5, 5))
        noise = BlockNoise(seed=5)
        # patch reach = radius + half_width = 6; window [32, 48)^2 is
        # far outside every transition band
        far = gen.generate_window(noise, 32, 32, 16, 16)
        assert far.provenance["regions_active"] == 1
        assert far.provenance["regions_skipped"] == 1
        near = gen.generate_window(noise, 4, 4, 16, 16)
        assert near.provenance["regions_active"] == 2
        assert near.provenance["regions_skipped"] == 0

    def test_full_grid_skips_region_with_no_support(self, grid):
        # the patch lies entirely outside the construction grid, so its
        # weight field is identically zero: prune must skip it and still
        # reproduce the unpruned surface bit-for-bit
        layout = LayeredLayout(
            background=GaussianSpectrum(h=1.0, clx=3.0, cly=3.0),
            patches=[RegionSpec(Circle(cx=100.0, cy=100.0, radius=4.0),
                                ExponentialSpectrum(h=2.0, clx=2.0, cly=2.0),
                                half_width=2.0)],
        )
        x = standard_normal_field(grid.shape, seed=9)
        pruned = InhomogeneousGenerator(layout, grid, truncation=(5, 5),
                                        prune=True).generate(noise=x)
        unpruned = InhomogeneousGenerator(layout, grid, truncation=(5, 5),
                                          prune=False).generate(noise=x)
        assert pruned.provenance["regions_skipped"] == 1
        assert unpruned.provenance["regions_skipped"] == 0
        assert np.array_equal(pruned.heights, unpruned.heights)

    def test_pruned_blend_matches_literal_reference(self):
        # subset-seeing layout: the reference evaluates eqn (37)
        # per-point over the full stack; the pruned fast path must agree
        grid = Grid2D(nx=24, ny=24, lx=24.0, ly=24.0)
        layout = LayeredLayout(
            background=GaussianSpectrum(h=1.0, clx=3.0, cly=3.0),
            patches=[RegionSpec(Circle(cx=60.0, cy=60.0, radius=3.0),
                                ExponentialSpectrum(h=2.0, clx=2.0, cly=2.0),
                                half_width=1.0)],
        )
        gen = InhomogeneousGenerator(layout, grid, truncation=(4, 4))
        x = standard_normal_field(grid.shape, seed=21)
        fast = gen.generate(noise=x)
        assert fast.provenance["regions_skipped"] == 1
        wm = gen.weight_map
        ref = blend_reference(wm, kernel_stack(wm.spectra, grid, 4, 4), x)
        assert np.allclose(fast.heights, ref, atol=1e-10)


class TestTiledProvenance:
    def test_serial_aggregates_region_counts(self, patch_layout, grid):
        gen = InhomogeneousGenerator(patch_layout, grid, truncation=(5, 5))
        plan = TilePlan(total_nx=48, total_ny=48, tile_nx=16, tile_ny=16)
        surf = generate_tiled(gen, BlockNoise(seed=7), plan, backend="serial")
        regions = surf.provenance["regions"]
        assert regions["min_active"] == 1
        assert regions["max_active"] == 2
        assert regions["single_kernel_tiles"] > 0
        assert (regions["active_total"] + regions["skipped_total"]
                == 2 * len(plan))
        batch = surf.provenance["batch_fft"]
        assert batch["forward_ffts"] >= len(plan)
        assert batch["inverse_ffts"] == regions["active_total"] * (
            batch["forward_ffts"] // len(plan)
        )

    def test_process_backend_identical_and_reports_cache(
        self, patch_layout, grid
    ):
        gen = InhomogeneousGenerator(patch_layout, grid, truncation=(5, 5))
        noise = BlockNoise(seed=7)
        plan = TilePlan(total_nx=48, total_ny=48, tile_nx=24, tile_ny=24)
        serial = generate_tiled(gen, noise, plan, backend="serial")
        proc = generate_tiled(gen, noise, plan, backend="process", workers=2)
        assert np.array_equal(serial.heights, proc.heights)
        assert set(proc.provenance["plan_cache"]) == {"hits", "misses"}
        assert proc.provenance["regions"] == serial.provenance["regions"]
        assert proc.provenance["batch_fft"] == serial.provenance["batch_fft"]


class TestContinuousLevelPruning:
    def test_level_pruning_bit_identical(self):
        grid = Grid2D(nx=32, ny=32, lx=32.0, ly=32.0)
        kwargs = dict(
            family=lambda cl: GaussianSpectrum(h=1.0, clx=cl, cly=cl),
            h_field=lambda x, y: 1.0 + 0.0 * x,
            # cl constant over most of the grid: upper levels unused
            cl_field=lambda x, y: 2.0 + 4.0 * (x > 28.0),
            grid=grid,
            levels=[2.0, 4.0, 6.0],
            truncation=(4, 4),
        )
        gen_p = ContinuousGenerator(prune=True, **kwargs)
        gen_u = ContinuousGenerator(prune=False, **kwargs)
        noise = BlockNoise(seed=3)
        a = gen_p.generate_window(noise, 0, 0, 16, 16)
        b = gen_u.generate_window(noise, 0, 0, 16, 16)
        assert np.array_equal(a.heights, b.heights)
        assert a.provenance["levels_skipped"] > 0
        assert b.provenance["levels_skipped"] == 0
        x = standard_normal_field(grid.shape, seed=4)
        fa = gen_p.generate(noise=x)
        fb = gen_u.generate(noise=x)
        assert np.array_equal(fa.heights, fb.heights)
