"""Unit tests for autocorrelation estimators."""

import numpy as np
import pytest

from repro.core.convolution import convolve_full
from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.stats.acf import (
    acf2d,
    acf2d_unbiased,
    acf_profile_x,
    acf_profile_y,
    radial_acf,
)


class TestAcf2d:
    def test_zero_lag_is_variance(self, rng):
        f = rng.standard_normal((32, 32))
        acf = acf2d(f)
        assert acf[0, 0] == pytest.approx(f.var())

    def test_white_noise_decorrelates(self, rng):
        f = rng.standard_normal((128, 128))
        acf = acf2d(f)
        assert abs(acf[5, 7]) < 0.05 * acf[0, 0]

    def test_even_symmetry(self, rng):
        # ACF of a real field: acf[m, n] == acf[-m, -n] (point symmetry
        # through zero lag; per-axis symmetry holds only in expectation)
        f = rng.standard_normal((16, 16))
        acf = acf2d(f)
        mirrored = np.roll(acf[::-1, ::-1], shift=(1, 1), axis=(0, 1))
        assert np.allclose(acf, mirrored, atol=1e-12)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            acf2d(np.zeros(8))

    def test_recovers_target_acf(self):
        # ensemble-averaged estimate converges to DFT(w)
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        spec = GaussianSpectrum(h=1.0, clx=16.0, cly=16.0)
        acc = np.zeros(grid.shape)
        n = 24
        for i in range(n):
            acc += acf2d(convolve_full(spec, grid, seed=500 + i))
        acc /= n
        lag = 4  # 16 units = cl -> rho = h^2/e
        expected = spec.autocorrelation(grid.x_centered[lag], 0.0)
        assert acc[lag, 0] == pytest.approx(expected, abs=0.08)


class TestAcfUnbiased:
    def test_zero_lag_matches(self, rng):
        f = rng.standard_normal((64, 64))
        u = acf2d_unbiased(f, max_lag=(8, 8))
        assert u.shape == (9, 9)
        assert u[0, 0] == pytest.approx(f.var(), rel=1e-9)

    def test_default_max_lag(self, rng):
        f = rng.standard_normal((32, 48))
        u = acf2d_unbiased(f)
        assert u.shape == (9, 13)

    def test_max_lag_validation(self, rng):
        with pytest.raises(ValueError):
            acf2d_unbiased(np.zeros((8, 8)), max_lag=(8, 2))

    def test_no_circular_leakage(self):
        # a linear ramp has wildly different circular vs aperiodic ACF;
        # the unbiased estimator must not see the wrap discontinuity
        n = 64
        f = np.outer(np.arange(n, dtype=float), np.ones(n))
        u = acf2d_unbiased(f, demean=True, max_lag=(4, 4))
        c = acf2d(f, demean=True)
        # circular estimate at lag 1 decays (wrap jump); unbiased stays
        # near the variance
        assert u[1, 0] > 0.95 * u[0, 0]
        assert u[1, 0] > c[1, 0]


class TestProfilesAndRadial:
    def test_profiles_start_at_variance(self, rng):
        f = rng.standard_normal((32, 32))
        px = acf_profile_x(f)
        py = acf_profile_y(f)
        assert px[0] == pytest.approx(f.var())
        assert py[0] == pytest.approx(f.var())
        assert px.shape == (17,)

    def test_radial_acf_isotropic_surface(self):
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
        f = convolve_full(spec, grid, seed=77)
        r, rho = radial_acf(f, grid.dx, grid.dy, n_bins=32)
        assert rho[0] == pytest.approx(f.var(), rel=0.15)
        # monotone-ish decay over the first correlation length
        assert rho[0] > rho[np.searchsorted(r, 24.0)]

    def test_radial_acf_r_max(self, rng):
        f = rng.standard_normal((32, 32))
        r, rho = radial_acf(f, 1.0, 1.0, n_bins=8, r_max=4.0)
        assert r[-1] <= 4.0
