"""Figure 2 — plate-oriented RRS with four *different* spectra.

Paper: "Figure 2 shows a 2D RRS with different spectra, Gaussian spectrum
with h = 1.0 and cl = 40 in the first quadrant, the second order
Power-Law with h = 1.5 and cl = 60 in the second, Exponential spectrum
with h = 2.0 and cl = 80 in the third, and the third order Power-Law with
h = 1.5 and cl = 60 in the fourth."

Beyond the per-region h / cl criteria of Figure 1, this bench verifies
the *spectral family* signature: the exponential quadrant must carry far
more small-scale energy (larger RMS slope relative to h) than the
Gaussian quadrant — the visual texture difference in the paper's figure.
"""

from __future__ import annotations

import numpy as np
import pytest
from _helpers import measure_slab, quadrant_interior, reference_cl
from conftest import bench_n, region_row

from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.figures import default_grid, figure2_layout
from repro.io.pgm import render_terrain

H_TOL = 0.25
CL_TOL = 0.40


@pytest.fixture(scope="module")
def generator():
    return InhomogeneousGenerator(figure2_layout(), default_grid(bench_n()),
                                  truncation=0.999)


def test_bench_fig2(benchmark, generator, record, out_dir):
    surface = benchmark.pedantic(
        lambda: generator.generate(seed=2009), rounds=2, iterations=1
    )
    grid = generator.grid
    lat = generator.layout
    targets = {
        "q1": lat.spectra_grid[1][1],  # gaussian
        "q2": lat.spectra_grid[0][1],  # power-law N=2
        "q3": lat.spectra_grid[0][0],  # exponential
        "q4": lat.spectra_grid[1][0],  # power-law N=3
    }
    rows = []
    slabs = {}
    for name, spec in targets.items():
        trim = int((50.0 + 1.5 * spec.clx) / grid.dx)
        slab = quadrant_interior(surface.heights, name, trim)
        slabs[name] = (slab, spec)
        h_hat, cl_hat, _ = measure_slab(slab, grid.dx, spec)
        # cl criterion: compare against the *same estimator on the same
        # window size* applied to a homogeneous surface of the target
        # spectrum — the finite-window ACF estimator is biased low for
        # the heavy-tailed families (exponential q3 especially), and the
        # homogeneous reference carries the identical bias.
        cl_ref = reference_cl(spec, slab.shape, grid.dx, grid.dy)
        row = region_row(name, spec.h, h_hat, cl_ref, cl_hat)
        row["family"] = spec.kind
        rows.append(row)
        assert h_hat == pytest.approx(spec.h, rel=H_TOL), name
        assert cl_hat == pytest.approx(cl_ref, rel=CL_TOL), name

    # family signature: normalised RMS slope (slope * cl / h) is much
    # larger for the exponential quadrant than the Gaussian one
    def norm_slope(name):
        slab, spec = slabs[name]
        gx = np.diff(slab, axis=0) / grid.dx
        return float(np.sqrt(np.mean(gx**2))) * spec.clx / spec.h

    s_exp = norm_slope("q3")
    s_gauss = norm_slope("q1")
    assert s_exp > 2.0 * s_gauss, (s_exp, s_gauss)

    render_terrain(surface, path=out_dir / "fig2.ppm",
                   vertical_exaggeration=6.0)
    record("fig2", {
        "figure": "Figure 2 (plate-oriented, four spectral families)",
        "n": grid.nx,
        "regions": rows,
        "normalised_slope_exponential": s_exp,
        "normalised_slope_gaussian": s_gauss,
        "image": "fig2.ppm",
    })
