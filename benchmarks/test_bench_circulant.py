"""Circulant-oracle bench — exact-sampler throughput and exactness.

The circulant-embedding sampler (:mod:`repro.core.circulant`) exists as
a correctness oracle for the convolution method, not as a production
engine; this bench records what that instrument costs — fields per
second against the convolution path at 512^2 — and pins the property
that makes it an oracle at all: on the paper's spectra the 2x even
extension embeds with no eigenvalue repair (clipped mass at rounding
noise), so every field it draws is *exactly* Gaussian with the analytic
ACF.  Row recorded in ``benchmarks/out/circulant_bench.json``.

One draw of the circulant sampler is a full-torus complex FFT yielding
two independent fields (real and imaginary parts), so its per-field
rate is half its per-draw rate; the convolution path yields one field
per generate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.circulant import CirculantGenerator
from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)

N = 512
TRUNC = (64, 64)  # -> 129 x 129 kernel on the dx = 1 grid
DRAWS = 6

SPECTRA = [
    GaussianSpectrum(h=1.0, clx=24.0, cly=24.0),
    ExponentialSpectrum(h=1.0, clx=24.0, cly=24.0),
    PowerLawSpectrum(h=1.0, clx=24.0, cly=24.0, order=2.0),
]


@pytest.fixture(scope="module")
def grid():
    return Grid2D(nx=N, ny=N, lx=float(N), ly=float(N))  # dx = 1


def test_bench_circulant_throughput(benchmark, record, grid):
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    circ = CirculantGenerator(spec, grid)
    conv = ConvolutionGenerator(spec, grid, truncation=TRUNC, engine="fft")

    # warm: embedding eigenvalues on one side, kernel plan on the other
    circ.generate_pair(seed=0)
    conv.generate(seed=0)

    t0 = time.perf_counter()
    for i in range(DRAWS):
        circ.generate_pair(seed=1 + i)
    t_circ = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(DRAWS):
        conv.generate(seed=1 + i)
    t_conv = time.perf_counter() - t0

    circ_rate = 2 * DRAWS / t_circ
    conv_rate = DRAWS / t_conv

    # ensemble sanity over the timed draws' seeds: the oracle's fields
    # hit the analytic variance h^2 = 1 (loose band — 12 fields of a
    # cl = 24 surface hold only ~(N/cl)^2 effective samples each)
    fields = []
    for i in range(DRAWS):
        re, im = circ.generate_pair(seed=1 + i)
        fields.append(np.asarray(re))
        fields.append(np.asarray(im))
    var = float(np.mean([(f ** 2).mean() for f in fields]))
    assert abs(var - 1.0) < 0.25, var

    # timing-table entry: one warm pair draw (two fields per FFT)
    benchmark.pedantic(lambda: circ.generate_pair(seed=99),
                       rounds=3, iterations=1)

    record("circulant_bench", {
        "claim": "circulant oracle throughput vs the convolution method "
                 "at 512^2; embedding exact (no eigenvalue repair)",
        "surface": [N, N],
        "embedding": list(circ.embedding_info["embedding"]),
        "kernel": list(conv.footprint),
        "draws": DRAWS,
        "timings_s": {
            "circulant_pair_draws": t_circ,
            "convolution_generates": t_conv,
        },
        "circulant_fields_per_s": circ_rate,
        "convolution_fields_per_s": conv_rate,
        "throughput_ratio_circulant_vs_convolution": circ_rate / conv_rate,
        "ensemble_variance": var,
        "eig_clipped_mass": circ.embedding_info["eig_clipped_mass"],
        "eig_min": circ.embedding_info["eig_min"],
    })

    assert circ.embedding_info["eig_clipped_mass"] <= 1e-12


@pytest.mark.parametrize("spec", SPECTRA, ids=lambda s: s.kind)
def test_embedding_exact_for_every_paper_spectrum(grid, spec):
    """The 2x even extension needs no repair for any paper spectrum at
    bench scale — the precondition for calling the sampler an oracle."""
    gen = CirculantGenerator(spec, grid)
    gen.generate(seed=0)
    assert gen.embedding_info["eig_clipped_mass"] <= 1e-12, (
        spec.kind, gen.embedding_info,
    )
