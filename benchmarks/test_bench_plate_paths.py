"""Ablation A1 — fast linear-blend path vs literal per-point kernel mixing.

DESIGN.md S6 calls out the implementation insight that eqn (37) is linear
in the kernel, so the per-point kernel mixture can be computed as M
homogeneous convolutions plus a weighted sum.  This bench demonstrates
(a) the two paths agree to rounding, and (b) the speedup, which is what
makes the 1024^2 figures interactive instead of hours-long.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.inhomogeneous import (
    InhomogeneousGenerator,
    blend_reference,
    kernel_stack,
)
from repro.core.rng import standard_normal_field
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.fields.parameter_map import PlateLattice

HALF = 6  # common kernel half-width for the literal path


@pytest.fixture(scope="module")
def setup():
    grid = Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)
    lat = PlateLattice.quadrants(
        192.0, 192.0,
        GaussianSpectrum(h=1.0, clx=12.0, cly=12.0),
        ExponentialSpectrum(h=1.5, clx=10.0, cly=10.0),
        GaussianSpectrum(h=2.0, clx=16.0, cly=16.0),
        GaussianSpectrum(h=1.5, clx=12.0, cly=12.0),
        half_width=16.0,
    )
    gen = InhomogeneousGenerator(lat, grid, truncation=(HALF, HALF))
    noise = standard_normal_field(grid.shape, seed=3)
    return grid, gen, noise


def test_bench_a1_fast_blend(benchmark, setup, record):
    grid, gen, noise = setup
    fast = benchmark.pedantic(
        lambda: gen.generate(noise=noise).heights, rounds=3, iterations=1
    )

    wm = gen.weight_map
    kernels = kernel_stack(wm.spectra, grid, HALF, HALF)
    t0 = time.perf_counter()
    ref = blend_reference(wm, kernels, noise)
    t_ref = time.perf_counter() - t0

    err = float(np.max(np.abs(fast - ref)))
    assert err < 1e-9
    t_fast = benchmark.stats.stats.mean
    record("a1_plate_paths", {
        "ablation": "A1: linear-blend fast path vs per-point kernel mixing",
        "grid": list(grid.shape),
        "kernel_half_width": HALF,
        "max_abs_difference": err,
        "fast_path_s": t_fast,
        "reference_path_s": t_ref,
        "speedup": t_ref / t_fast,
    })
    # the literal path is orders of magnitude slower even at 48^2
    assert t_ref > 5.0 * t_fast
