"""Ablation A4 — continuous-parameter generation: level-count convergence.

The ContinuousGenerator (DESIGN.md extension of the paper's "parameters
continuously varied from place to place") quantises the cl field onto L
levels and cross-fades kernels.  This bench measures how the realised
local correlation length tracks a linear cl gradient as L grows, and the
cost (one convolution per level).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.fields.continuous import ContinuousGenerator
from repro.stats.correlation_length import one_over_e_from_profile
from repro.stats.acf import acf2d_unbiased

DOMAIN = 1024.0
CL_LO, CL_HI = 15.0, 60.0


def _gen(levels: int) -> ContinuousGenerator:
    return ContinuousGenerator(
        family=lambda cl: GaussianSpectrum(h=1.0, clx=cl, cly=cl),
        h_field=lambda x, y: np.ones(np.shape(x)),
        cl_field=lambda x, y: CL_LO + (CL_HI - CL_LO) * np.asarray(x) / DOMAIN,
        grid=Grid2D(nx=512, ny=512, lx=DOMAIN, ly=DOMAIN),
        levels=levels,
        truncation=0.999,
    )


def _cl_tracking_error(gen: ContinuousGenerator, n_real: int = 6) -> float:
    """Mean relative error of the measured local cl against the target."""
    dx = gen.grid.dx
    strip_width = 64  # samples per x-strip used to estimate local cl
    errors = []
    for strip_i, x0 in enumerate(range(64, 512 - 64, 96)):
        x_mid = (x0 + strip_width / 2) * dx
        target = CL_LO + (CL_HI - CL_LO) * x_mid / DOMAIN
        vals = []
        for k in range(n_real):
            s = gen.generate(seed=500 + k)
            strip = s.heights[x0 : x0 + strip_width, :]
            acf = acf2d_unbiased(strip.T, max_lag=(min(120, 200), 1))
            lags = np.arange(acf.shape[0]) * dx
            try:
                vals.append(one_over_e_from_profile(lags, acf[:, 0]))
            except ValueError:
                continue
        if vals:
            errors.append(abs(np.mean(vals) - target) / target)
    return float(np.mean(errors))


def test_bench_a4_continuous_levels(benchmark, record):
    rows = []
    for levels in (2, 4, 8):
        gen = _gen(levels)
        t0 = time.perf_counter()
        gen.generate(seed=1)
        t_gen = time.perf_counter() - t0
        err = _cl_tracking_error(gen)
        rows.append({
            "levels": levels,
            "cl_tracking_rel_error": err,
            "generate_s": t_gen,
        })

    errs = [r["cl_tracking_rel_error"] for r in rows]
    # more levels must not track worse, and even 2 levels stays sane
    assert errs[-1] <= errs[0] + 0.05
    assert errs[-1] < 0.25

    gen8 = _gen(8)
    benchmark.pedantic(lambda: gen8.generate(seed=2), rounds=2, iterations=1)
    record("a4_continuous_levels", {
        "ablation": "A4: cl-level count for continuous parameter fields",
        "cl_range": [CL_LO, CL_HI],
        "rows": rows,
    })
