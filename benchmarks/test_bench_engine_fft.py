"""Engine bench — overlap-save FFT tile engine vs the spatial reference.

Acceptance criterion of the engine PR: tiled generation of a 4096x4096
Gaussian-spectrum surface with a >=129x129 kernel must be >=3x faster
with ``--engine fft`` than the seed spatial path, with max abs deviation
<= 1e-10 vs ``apply_kernel_valid``'s oracle, recorded in
``benchmarks/out/engine_fft.json``.  The recorded row also carries the
default-path (``auto``) timing and the pre-engine ``fftconvolve``
timing, which ``benchmarks/check_engine_gate.py`` compares to enforce
the <=10%-slowdown regression gate.

The spatial engine is O(output * K^2) — a full 4096^2 run with a 129^2
kernel would take tens of minutes — so its tiled time is measured on a
256^2 output sample and scaled by the output count (the engine has no
economy of scale to misrepresent: cost is exactly proportional to
output samples for a fixed kernel).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.convolution import (
    ConvolutionGenerator,
    _apply_kernel_valid_fftconvolve,
    apply_kernel_valid_fft,
    apply_kernel_valid_spatial,
    noise_window_for,
    select_engine,
)
from repro.core.engine import plan_cache
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.parallel.tiles import TilePlan

SURFACE = 4096
TILE = 512
TRUNC = (64, 64)  # -> 129 x 129 kernel
SPATIAL_SAMPLE = 256  # spatial oracle sample edge (extrapolated)


@pytest.fixture(scope="module")
def gen():
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    return ConvolutionGenerator(spec, grid, truncation=TRUNC, engine="fft")


def _tiled_conv(gen, noise: BlockNoise, plan: TilePlan, conv):
    """Run ``conv(kernel, window)`` over every tile of ``plan``.

    Returns ``(surface, conv_seconds)``.  Only the per-tile valid
    correlations are timed: reading the tile's noise window from the
    deterministic noise plane costs the same for every engine (it is the
    halo-exchange analogue, not engine work), and its jitter would
    otherwise swamp the engine delta this bench exists to measure.
    """
    out = np.empty((plan.total_nx, plan.total_ny))
    elapsed = 0.0
    for t in plan:
        wx0, wy0, wnx, wny = noise_window_for(gen.kernel, t.x0, t.y0,
                                              t.nx, t.ny)
        window = noise.window(wx0, wy0, wnx, wny)
        t0 = time.perf_counter()
        tile = conv(gen.kernel, window)
        elapsed += time.perf_counter() - t0
        out[t.x0 : t.x1, t.y0 : t.y1] = tile
    return out, elapsed


def test_bench_engine_fft_speedup(benchmark, record, gen):
    kernel_shape = gen.footprint
    assert kernel_shape[0] >= 129 and kernel_shape[1] >= 129
    assert select_engine(kernel_shape) == "fft"  # auto == fft at this size

    noise = BlockNoise(seed=41)
    plan = TilePlan(total_nx=SURFACE, total_ny=SURFACE,
                    tile_nx=TILE, tile_ny=TILE)

    # Warm both code paths (scipy FFT workspaces, page cache) so the
    # timed passes compare steady-state costs.
    gen.generate_window(noise, 0, 0, TILE, TILE)
    _apply_kernel_valid_fftconvolve(
        gen.kernel, noise.window(0, 0, TILE + 128, TILE + 128)
    )

    # --- FFT engine (the auto-dispatch default for this kernel) --------
    plan_cache.clear()
    fft_surface, t_fft = _tiled_conv(gen, noise, plan, apply_kernel_valid_fft)
    cache_stats = plan_cache.stats().as_dict()

    # --- seed baseline: per-tile fftconvolve ---------------------------
    legacy, t_legacy = _tiled_conv(gen, noise, plan,
                                   _apply_kernel_valid_fftconvolve)

    maxdev_legacy = float(np.max(np.abs(fft_surface - legacy)))
    del legacy

    # --- spatial oracle on a sample tile, extrapolated -----------------
    wx0, wy0, wnx, wny = noise_window_for(
        gen.kernel, 0, 0, SPATIAL_SAMPLE, SPATIAL_SAMPLE
    )
    window = noise.window(wx0, wy0, wnx, wny)
    t0 = time.perf_counter()
    spatial_sample = apply_kernel_valid_spatial(gen.kernel, window)
    t_sample = time.perf_counter() - t0
    t_spatial_est = t_sample * (SURFACE * SURFACE) / SPATIAL_SAMPLE**2
    maxdev_spatial = float(np.max(np.abs(
        fft_surface[:SPATIAL_SAMPLE, :SPATIAL_SAMPLE] - spatial_sample
    )))

    speedup = t_spatial_est / t_fft

    # timing-table entry: one warm-cache tile through the FFT engine
    benchmark.pedantic(
        lambda: gen.generate_window(noise, 0, 0, TILE, TILE),
        rounds=3, iterations=1,
    )

    record("engine_fft", {
        "claim": "overlap-save FFT engine >=3x over the spatial path at "
                 "4096^2 / 129^2 kernel, <=1e-10 deviation",
        "surface": [SURFACE, SURFACE],
        "tile": [TILE, TILE],
        "kernel": list(kernel_shape),
        "tiles": len(plan),
        "default_engine_for_kernel": select_engine(kernel_shape),
        "timings_s": {
            "fft_tiled": t_fft,
            "legacy_fftconvolve_tiled": t_legacy,
            "spatial_sample": t_sample,
            "spatial_estimated_tiled": t_spatial_est,
        },
        "spatial_sample_edge": SPATIAL_SAMPLE,
        "speedup_fft_vs_spatial": speedup,
        "speedup_fft_vs_legacy": t_legacy / t_fft,
        "max_abs_dev_fft_vs_legacy": maxdev_legacy,
        "max_abs_dev_fft_vs_spatial_sample": maxdev_spatial,
        "plan_cache": cache_stats,
    })

    assert speedup >= 3.0
    assert maxdev_legacy <= 1e-10
    assert maxdev_spatial <= 1e-10
    # one plan, reused by every tile of the FFT pass
    assert cache_stats["misses"] == 1
    assert cache_stats["hits"] == len(plan) - 1
