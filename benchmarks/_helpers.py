"""Measurement helpers shared by the figure benches."""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core.engine import plan_cache
from repro.core.spectra import Spectrum
from repro.stats.acf import acf2d_unbiased
from repro.stats.correlation_length import (
    expected_one_over_e,
    one_over_e_from_profile,
)

__all__ = [
    "BENCH_SCHEMA",
    "git_rev",
    "measure_slab",
    "metrics_snapshot",
    "quadrant_interior",
    "reference_cl",
    "write_bench_json",
]

#: Schema tag stamped into every ``benchmarks/out/*.json`` row so that
#: downstream readers (EXPERIMENTS.md tooling, track_regressions.py) can
#: detect shape changes instead of silently misreading old rows.
BENCH_SCHEMA = "repro.bench/v1"


def git_rev(repo_dir: Optional[Path] = None) -> Optional[str]:
    """Short git revision of the repo, or None outside a checkout.

    Never raises: bench rows must be writable from an exported tarball
    or a container without git just as well as from a working tree.
    """
    cwd = repo_dir or Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _json_default(o: Any) -> Any:
    if isinstance(o, (np.floating, np.integer)):
        return o.item()
    if isinstance(o, np.ndarray):
        return o.tolist()
    raise TypeError(f"unserialisable {type(o)}")


def write_bench_json(
    path: Union[str, Path],
    payload: Dict[str, Any],
    *,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Write one bench result row, stamped with measurement provenance.

    Adds a ``bench`` block carrying the schema version, the git revision
    the numbers were measured at, and a wall-clock timestamp (injectable
    for tests).  Existing keys in ``payload`` are never overwritten; the
    stamped document is returned for callers that also want it in-memory.
    """
    ts = time.time() if timestamp is None else float(timestamp)
    doc = dict(payload)
    doc.setdefault("bench", {
        "schema": BENCH_SCHEMA,
        "git_rev": git_rev(),
        "timestamp": ts,
    })
    Path(path).write_text(json.dumps(doc, indent=2, default=_json_default))
    return doc


def metrics_snapshot() -> Dict[str, Any]:
    """Process-level metrics for stamping into bench result rows.

    Always carries the kernel-plan cache counters (with the derived
    hit-rate); when a recorder is installed, the live ``repro.obs``
    counters ride along too, so bench JSON rows double as metric
    provenance for EXPERIMENTS.md.
    """
    cache = plan_cache.stats().as_dict()
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    snap: Dict[str, Any] = {
        "plan_cache": dict(
            cache, hit_rate=cache.get("hits", 0) / lookups if lookups else 0.0
        ),
    }
    if obs.enabled():
        snap["counters"] = obs.get_recorder().metrics.counters()
    return snap


def measure_slab(
    slab: np.ndarray, dx: float, spectrum: Spectrum
) -> Tuple[float, float, float]:
    """Measured ``(h, cl_1/e, expected_cl_1/e)`` of a homogeneous slab.

    ``cl`` is the 1/e crossing of the unbiased (aperiodic) x-axis ACF;
    the expected crossing is evaluated on the spectrum's *exact* ACF so
    that Power-Law regions are compared against the right target.
    """
    h_hat = float(slab.std())
    max_lag_x = min(slab.shape[0] // 2, max(8, int(4 * spectrum.clx / dx)))
    acf = acf2d_unbiased(slab, max_lag=(max_lag_x, 1))
    lags = np.arange(acf.shape[0]) * dx
    try:
        cl_hat = one_over_e_from_profile(lags, acf[:, 0])
    except ValueError:
        cl_hat = float("nan")  # window too small for this cl: no crossing
    cl_expect = expected_one_over_e(spectrum, axis="x")
    return h_hat, cl_hat, cl_expect


def reference_cl(
    spectrum: Spectrum, slab_shape: Tuple[int, int], dx: float, dy: float,
    seed: int = 424242,
) -> float:
    """What the slab cl estimator reads on a *homogeneous* surface.

    The demeaned finite-window ACF estimator is biased low when the
    window holds only a few correlation lengths (the window mean absorbs
    the low-frequency energy) — strongly so for the heavy-tailed
    exponential family.  Comparing a region's measured cl against this
    same-estimator, same-window homogeneous reference separates "the
    generator put the wrong spectrum here" (a bug) from "the estimator is
    biased at this window size" (a property of the measurement).
    """
    from repro.core.convolution import convolve_full
    from repro.core.grid import Grid2D

    # generate on a 2x grid (well-conditioned synthesis), measure on a
    # slab-sized window so the estimator bias matches the region slab
    nx = 2 * (slab_shape[0] + (slab_shape[0] % 2))
    ny = 2 * (slab_shape[1] + (slab_shape[1] % 2))
    grid = Grid2D(nx=nx, ny=ny, lx=nx * dx, ly=ny * dy)
    vals = []
    for i in range(5):
        f = convolve_full(spectrum, grid, seed=seed + i)
        slab = f[: slab_shape[0], : slab_shape[1]]
        _, cl_hat, _ = measure_slab(slab, dx, spectrum)
        if np.isfinite(cl_hat):
            vals.append(cl_hat)
    if not vals:
        raise ValueError(
            f"homogeneous reference never crossed 1/e at window {slab_shape}; "
            "the window is too small to estimate this correlation length"
        )
    return float(np.mean(vals))


def quadrant_interior(
    heights: np.ndarray, quadrant: str, trim: int
) -> np.ndarray:
    """Interior slab of a quadrant, trimmed by ``trim`` samples on the
    sides that touch the central transition cross.

    Quadrant naming matches the paper (origin at the domain centre):
    Q1 = +x +y, Q2 = -x +y, Q3 = -x -y, Q4 = +x -y.  Axis 0 is x.
    """
    nx, ny = heights.shape
    cx, cy = nx // 2, ny // 2
    slabs = {
        "q1": (slice(cx + trim, nx), slice(cy + trim, ny)),
        "q2": (slice(0, cx - trim), slice(cy + trim, ny)),
        "q3": (slice(0, cx - trim), slice(0, cy - trim)),
        "q4": (slice(cx + trim, nx), slice(0, cy - trim)),
    }
    sx, sy = slabs[quadrant]
    return heights[sx, sy]
