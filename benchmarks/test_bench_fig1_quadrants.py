"""Figure 1 — plate-oriented RRS, one Gaussian spectrum, four parameter sets.

Paper: "Figure 1 shows a 2D RRS with the same Gaussian spectrum but
different parameters, h = 1.0 and cl = 40 in the first quadrant, h = 1.5
and cl = 60 in the second, h = 2.0 and cl = 80 in the third, and h = 1.5
and cl = 60 in the fourth."

Reproduction criteria (the figure itself is qualitative): each quadrant's
interior realises its target h and 1/e correlation length; the rendered
image is written to benchmarks/out/fig1.ppm.
"""

from __future__ import annotations

import pytest
from _helpers import measure_slab, quadrant_interior
from conftest import bench_n, region_row

from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.surface import Surface
from repro.figures import default_grid, figure1_layout
from repro.io.pgm import render_terrain

H_TOL = 0.22
CL_TOL = 0.35


@pytest.fixture(scope="module")
def generator():
    n = bench_n()
    return InhomogeneousGenerator(figure1_layout(), default_grid(n),
                                  truncation=0.999)


def test_bench_fig1(benchmark, generator, record, out_dir):
    surface = benchmark.pedantic(
        lambda: generator.generate(seed=2009), rounds=2, iterations=1
    )
    assert isinstance(surface, Surface)
    grid = generator.grid
    lat = generator.layout

    # quadrant -> paper parameters (Q1..Q4)
    targets = {
        "q1": lat.spectra_grid[1][1],
        "q2": lat.spectra_grid[0][1],
        "q3": lat.spectra_grid[0][0],
        "q4": lat.spectra_grid[1][0],
    }
    rows = []
    for name, spec in targets.items():
        trim = int((50.0 + 1.5 * spec.clx) / grid.dx)
        slab = quadrant_interior(surface.heights, name, trim)
        h_hat, cl_hat, cl_expect = measure_slab(slab, grid.dx, spec)
        rows.append(region_row(name, spec.h, h_hat, cl_expect, cl_hat))
        assert h_hat == pytest.approx(spec.h, rel=H_TOL), name
        assert cl_hat == pytest.approx(cl_expect, rel=CL_TOL), name

    # ordering claims visible in the paper's figure: Q3 roughest, Q1 smoothest
    by_name = {r["region"]: r["measured_h"] for r in rows}
    assert by_name["q3"] > by_name["q2"] > by_name["q1"]

    render_terrain(surface, path=out_dir / "fig1.ppm",
                   vertical_exaggeration=6.0)
    record("fig1", {
        "figure": "Figure 1 (plate-oriented, Gaussian, 4 parameter sets)",
        "n": grid.nx,
        "regions": rows,
        "image": "fig1.ppm",
    })
