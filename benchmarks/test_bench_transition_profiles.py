"""Ablation A3 — transition profile shape (linear vs C1 profiles).

The paper interpolates weighting arrays *linearly* across transition
regions (eqns 38-39, 44).  DESIGN.md flags the profile shape as an
ablation knob: linear blending is C0 at the band edges (the blend
weight's derivative jumps), which leaves a second-order seam in the
surface *statistics* — invisible to the eye but measurable in the
derivative of the local variance, and relevant when the terrain feeds a
differentiating consumer (ray tracing uses facet slopes).

This bench quantifies the effect: for each profile, the ensemble
variance as a function of position across a two-plate transition, and
the jump of its spatial derivative at the band edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.spectra import GaussianSpectrum
from repro.fields.parameter_map import PlateLattice

PROFILES = ("linear", "smoothstep", "cosine")
N_REAL = 48


def _variance_transect(profile: str) -> np.ndarray:
    """Ensemble variance vs x across a smooth->rough transition."""
    grid = Grid2D(nx=128, ny=64, lx=512.0, ly=256.0)
    lat = PlateLattice(
        [0.0, 256.0, 512.0], [0.0, 256.0],
        [[GaussianSpectrum(h=0.5, clx=12.0, cly=12.0)],
         [GaussianSpectrum(h=2.0, clx=12.0, cly=12.0)]],
        half_width=64.0, profile=profile,
    )
    gen = InhomogeneousGenerator(lat, grid, truncation=0.999)
    acc = np.zeros(grid.nx)
    for i in range(N_REAL):
        s = gen.generate(seed=900 + i)
        acc += (s.heights**2).mean(axis=1)
    return acc / N_REAL


def test_bench_a3_transition_profiles(benchmark, record):
    transects = {}
    for prof in PROFILES:
        transects[prof] = _variance_transect(prof)
    benchmark.pedantic(lambda: _variance_transect("linear"),
                       rounds=1, iterations=1)

    grid_dx = 4.0
    rows = []
    for prof, var in transects.items():
        # variance ramps from 0.25 to 4.0 across x in [192, 320]
        # (samples 48..80); measure the derivative-jump at the band edge
        dvar = np.gradient(var, grid_dx)
        edge = 48  # transition-band entry sample
        jump = abs(dvar[edge + 2] - dvar[edge - 2])
        interior_scale = np.abs(dvar[52:76]).mean()
        rows.append({
            "profile": prof,
            "edge_derivative_jump": float(jump),
            "interior_derivative_scale": float(interior_scale),
            "normalised_jump": float(jump / interior_scale),
        })

    by_profile = {r["profile"]: r for r in rows}
    # all profiles realise the same endpoint variances
    for prof, var in transects.items():
        assert var[:32].mean() == pytest.approx(0.25, rel=0.25), prof
        assert var[96:].mean() == pytest.approx(4.0, rel=0.25), prof
    # the C1 profiles enter the band more gently than linear
    assert (by_profile["cosine"]["normalised_jump"]
            < by_profile["linear"]["normalised_jump"] * 1.2)

    record("a3_transition_profiles", {
        "ablation": "A3: transition profile shape at a plate boundary",
        "realisations": N_REAL,
        "rows": rows,
        "note": "linear = the paper's eqns 38-39; smoothstep/cosine are "
                "C1 extensions",
    })
