"""Extension bench E3 — Kirchhoff scattering from generated surfaces.

The paper's references [1]-[2] (Thorsos) established the Kirchhoff
approximation's validity for Gaussian-spectrum rough surfaces using
numerically generated realisations — the very use-case the paper's
generator serves.  This bench reruns that experiment's core curves on
*our* generated profiles:

* coherent specular reflection vs roughness: Monte-Carlo over generated
  profiles against the analytic ``exp(-g/2)`` — agreement certifies the
  whole chain (spectrum -> kernel -> profile -> fields);
* incoherent angular spectra at two roughness levels against the KA
  series for the Gaussian ACF (shape comparison: peak location and
  angular width).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.oned import Gaussian1D, ProfileGenerator
from repro.scattering.kirchhoff import ka_incoherent_nrcs_gaussian
from repro.scattering.monte_carlo import (
    coherent_attenuation_curve,
    run_ensemble,
)

K = 2.0 * np.pi        # wavelength = 1 profile unit
THETA_I = np.deg2rad(20.0)
CL = 2.0               # 2 wavelengths
N, LENGTH = 4096, 400.0


def _generator(h: float):
    return ProfileGenerator(Gaussian1D(h=h, cl=CL), N, LENGTH)


def _gen(h: float, seed: int) -> np.ndarray:
    if h == 0.0:
        return np.zeros(N)
    return _generator(h).generate(seed=seed)


def test_bench_e3_coherent_attenuation(benchmark, record):
    hs = [0.02, 0.05, 0.10, 0.15, 0.20]
    h_arr, measured, analytic = benchmark.pedantic(
        lambda: coherent_attenuation_curve(
            _gen, hs, dx=LENGTH / N, k=K, theta_i=THETA_I, n_realisations=24
        ),
        rounds=1, iterations=1,
    )
    err = np.abs(measured - analytic)
    assert np.all(err < 0.08)
    assert np.all(np.diff(measured) < 0.0)  # monotone decay
    record("e3_coherent_attenuation", {
        "extension": "E3: coherent reflection vs exp(-g/2) (Thorsos frame)",
        "theta_i_deg": 20.0,
        "cl_wavelengths": CL,
        "rows": [
            {"h": float(h), "measured": float(m), "analytic": float(a)}
            for h, m, a in zip(h_arr, measured, analytic)
        ],
        "max_abs_error": float(err.max()),
    })


def test_bench_e3_incoherent_shape(benchmark, record):
    thetas = np.deg2rad(np.linspace(-70.0, 70.0, 141))
    rows = []
    timed_once = False
    for h, n_real in ((0.08, 48), (0.30, 24)):
        profiles = [_gen(h, 500 + s) for s in range(n_real)]
        if not timed_once:
            ens = benchmark.pedantic(
                lambda p=profiles: run_ensemble(p, dx=LENGTH / N, k=K,
                                                theta_i=THETA_I,
                                                theta_s=thetas),
                rounds=1, iterations=1,
            )
            timed_once = True
        else:
            ens = run_ensemble(profiles, dx=LENGTH / N, k=K, theta_i=THETA_I,
                               theta_s=thetas)
        mc = ens.incoherent_intensity
        ka = ka_incoherent_nrcs_gaussian(K, h, CL, THETA_I, thetas)

        # robust shape criteria: normalised-curve correlation plus the
        # half-power width of the (lightly smoothed) Monte-Carlo lobe.
        # Peak *location* of the rough lobe is a noisy statistic (the
        # lobe is flat-topped), so it is recorded but not asserted.
        mcn = mc / mc.max()
        kan = ka / ka.max()
        corr = float(np.sum(mcn * kan)
                     / np.sqrt(np.sum(mcn**2) * np.sum(kan**2)))
        smooth = np.convolve(mc, np.ones(7) / 7.0, mode="same")
        mc_width = float(np.count_nonzero(smooth > 0.5 * smooth.max()))
        ka_width = float(np.count_nonzero(ka > 0.5 * ka.max()))
        rows.append({
            "h": h,
            "n_realisations": n_real,
            "shape_correlation": corr,
            "mc_halfwidth_deg": mc_width,
            "ka_halfwidth_deg": ka_width,
            "mc_peak_deg": float(np.rad2deg(thetas[np.argmax(smooth)])),
            "ka_peak_deg": float(np.rad2deg(thetas[np.argmax(ka)])),
        })
        assert corr > 0.95, (h, corr)
        assert 0.5 < mc_width / ka_width < 2.0

    # rougher surface -> broader diffuse lobe, in both MC and KA
    assert rows[1]["mc_halfwidth_deg"] > rows[0]["mc_halfwidth_deg"]
    assert rows[1]["ka_halfwidth_deg"] > rows[0]["ka_halfwidth_deg"]
    record("e3_incoherent_shape", {
        "extension": "E3: incoherent lobe shape, Monte-Carlo vs KA series",
        "rows": rows,
    })
