#!/usr/bin/env python
"""Perf-regression gate for the convolution engines.

Reads ``benchmarks/out/engine_fft.json`` (written by
``test_bench_engine_fft.py``) and fails when:

* the default path (``auto``, which dispatches to the FFT engine for
  production-size kernels) is more than ``--max-slowdown`` times the
  seed baseline (the pre-engine per-tile ``scipy.signal.fftconvolve``
  path) — the "don't regress the default" contract;
* the FFT engine's speedup over the spatial reference path falls below
  ``--min-speedup`` — the engine's reason to exist;
* either accuracy deviation exceeds ``--max-deviation``.

Also reads ``benchmarks/out/inhomo_batch.json`` (written by
``test_bench_inhomo_batch.py``) and fails when:

* the batched multi-region engine's speedup over the per-region path
  (one forward+inverse FFT pair per region) falls below
  ``--min-batch-speedup`` on the M=4 layout at 2048^2;
* the batched surface deviates from the spatial oracle by more than
  ``--max-deviation``;
* the homogeneous default path regressed beyond ``--max-homog-slowdown``
  relative to the seed ``fftconvolve`` baseline measured in the same
  run.

Additionally measures — live, in this process — the overhead of the
``repro.obs`` tracing layer on a homogeneous 2048^2 tiled FFT run
(129^2 kernel, warm plan cache) and fails when recording costs more
than ``--max-obs-overhead`` (default 3%) over the disabled no-op path.
The figure is recorded in ``benchmarks/out/obs_overhead.json``;
``--skip-obs-overhead`` skips the measurement (e.g. on loaded CI
machines).

Similarly measures the overhead of the fault-tolerant executor path
(``generate_tiled(..., retry=RetryPolicy())``, which routes through the
retrying scheduler even when nothing fails) on the same clean 2048^2
serial tiled run and fails when it costs more than
``--max-jobs-overhead`` (default 2%) over the plain path.  Recorded in
``benchmarks/out/jobs_overhead.json``; ``--skip-jobs-overhead`` skips
it.

Also measures the overhead of the out-of-core store sink
(``generate_tiled(..., out=SurfaceStore)``: async double-buffered
writeback of every tile to disk) against the in-memory tiled run at
4096^2 and fails when it costs more than ``--max-store-overhead``
(default 5%).  Recorded in ``benchmarks/out/store_overhead.json``;
``--skip-store-overhead`` skips it.

Also measures the ``dtype="float32"`` engine mode against the default
``float64`` path on the homogeneous 4096^2 tiled FFT workload (engine
work only — the per-tile valid correlations; the dtype-independent
noise reads are excluded, same convention as the engine bench) and
fails when the speedup falls below ``--min-dtype-speedup`` (default
1.3x) or the float32 surface drifts from the float64 surface by more
than ``--max-dtype-deviation``.  Recorded in
``benchmarks/out/engine_dtype.json``; ``--skip-dtype-speedup`` skips
it.

Also measures the distributed backend's throughput scaling: the
homogeneous 8192^2 tiled path through ``generate_dist`` with 1 vs 2
local worker processes (lease-scheduled over the store bitmap).  The two
runs must be bit-identical (always enforced — sharding may never change
the surface) and, on machines with at least two usable cores, 2 workers
must deliver ``--min-dist-speedup`` (default 1.6x) over 1; on
single-core machines the speedup is recorded as context only, matching
the parallel bench's convention.  Recorded in
``benchmarks/out/dist_scaling.json``; ``--skip-dist`` skips it.

Also measures the serve front door's shared-spectrum batching: 8
concurrent small (512^2) requests drawing on the same noise plane with
4 distinct spectrum heights, run through the
``repro.serve.batch.Batcher`` (one noise read + one forward-FFT set
shared across the group, value-equal kernels deduplicated) vs the same
8 requests generated sequentially one solo windowed pass at a time.
Fails when the batched throughput falls below
``--min-serve-batch-speedup`` (default 1.5x) or any batched reply is
not bit-identical to its solo counterpart (always enforced — batching
may never change the bytes).  Recorded in
``benchmarks/out/serve_batching.json``; ``--skip-serve`` skips it.

Finally measures the circulant-embedding oracle's throughput against
the convolution method on a 512^2 window (fields per second; the
circulant sampler yields two independent fields per torus FFT) and
fails when the oracle's embedding needed eigenvalue repair beyond
rounding noise (``eig_clipped_mass`` > 1e-12 would mean the "exact"
oracle is silently approximate).  Recorded in
``benchmarks/out/circulant_throughput.json``; ``--skip-circulant``
skips it.

Also measures the ``repro.verify`` streaming verification pass against
the 4096^2 store-backed self-affine generation run it gates and fails
when verification costs more than ``--max-verify-overhead`` (default
10%) of the generation wall time, or when the reference surface fails
its own verification report.  Recorded in
``benchmarks/out/verify_overhead.json``; ``--skip-verify`` skips it.

Usage (CI tier-2, after running the benches)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine_fft.py \\
        benchmarks/test_bench_inhomo_batch.py
    PYTHONPATH=src python benchmarks/check_engine_gate.py

Exit code 0 on pass, 1 on any gate failure, 2 when a results file is
missing or unreadable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).resolve().parent / "out" / "engine_fft.json"
DEFAULT_INHOMO_RESULTS = (
    Path(__file__).resolve().parent / "out" / "inhomo_batch.json"
)
DEFAULT_OBS_RESULTS = (
    Path(__file__).resolve().parent / "out" / "obs_overhead.json"
)
DEFAULT_JOBS_RESULTS = (
    Path(__file__).resolve().parent / "out" / "jobs_overhead.json"
)
DEFAULT_STORE_RESULTS = (
    Path(__file__).resolve().parent / "out" / "store_overhead.json"
)
DEFAULT_DTYPE_RESULTS = (
    Path(__file__).resolve().parent / "out" / "engine_dtype.json"
)
DEFAULT_CIRCULANT_RESULTS = (
    Path(__file__).resolve().parent / "out" / "circulant_throughput.json"
)
DEFAULT_DIST_RESULTS = (
    Path(__file__).resolve().parent / "out" / "dist_scaling.json"
)
DEFAULT_TELEMETRY_RESULTS = (
    Path(__file__).resolve().parent / "out" / "telemetry_overhead.json"
)
DEFAULT_SERVE_RESULTS = (
    Path(__file__).resolve().parent / "out" / "serve_batching.json"
)
DEFAULT_VERIFY_RESULTS = (
    Path(__file__).resolve().parent / "out" / "verify_overhead.json"
)

# Overhead-measurement scenario: the engine bench's homogeneous FFT
# configuration (dx=1 grid, cl=24 Gaussian -> 129^2 kernel) tiled over a
# 2048^2 output — large enough that per-span cost, not startup jitter,
# dominates the delta.
OBS_SURFACE = 2048
OBS_TILE = 512
OBS_TRUNC = (64, 64)
OVERHEAD_REPEATS = 7  # odd: both overhead rows are medians of per-pair ratios

# Dist-scaling scenario: same engine configuration, large enough that
# tile compute dominates worker startup and socket chatter.
DIST_SURFACE = 8192
DIST_TILE = 512


def _import_repro():
    """Import ``repro``, falling back to the sibling ``src`` tree."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    import repro  # noqa: F401
    return repro


def _write_row(path: Path, row: dict) -> None:
    """Record one gate row, stamped with schema/git-rev/timestamp."""
    _import_repro()
    try:
        from _helpers import write_bench_json
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from _helpers import write_bench_json
    path.parent.mkdir(exist_ok=True)
    write_bench_json(path, row)


def measure_obs_overhead() -> dict:
    """Time a tiled homogeneous FFT run with tracing off vs on.

    Returns the recorded row: best wall time per mode, the relative
    overhead (median of per-pair ratios over order-alternated
    back-to-back runs — see ``measure_jobs_overhead`` for why), and the
    span/counter volume of one traced pass.
    """
    _import_repro()
    from repro import obs
    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.parallel.executor import generate_tiled
    from repro.parallel.tiles import TilePlan

    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    gen = ConvolutionGenerator(spec, grid, truncation=OBS_TRUNC,
                               engine="fft")
    noise = BlockNoise(seed=41)
    plan = TilePlan(total_nx=OBS_SURFACE, total_ny=OBS_SURFACE,
                    tile_nx=OBS_TILE, tile_ny=OBS_TILE)

    def run_off() -> float:
        t0 = time.perf_counter()
        generate_tiled(gen, noise, plan, backend="serial")
        return time.perf_counter() - t0

    span_count = counter_total = 0

    def run_on() -> float:
        nonlocal span_count, counter_total
        with obs.recording() as rec:
            t0 = time.perf_counter()
            generate_tiled(gen, noise, plan, backend="serial")
            elapsed = time.perf_counter() - t0
            span_count = len(rec.spans())
            counter_total = sum(rec.metrics.counters().values())
        return elapsed

    # Warm the plan cache, scipy FFT workspaces and both code paths so
    # the repeats time the steady state the budget is defined against.
    gen.generate_window(noise, 0, 0, OBS_TILE, OBS_TILE)
    run_off()
    run_on()

    times_off, times_on, ratios = [], [], []
    for k in range(OVERHEAD_REPEATS):
        if k % 2 == 0:
            toff, ton = run_off(), run_on()
        else:
            ton, toff = run_on(), run_off()
        times_off.append(toff)
        times_on.append(ton)
        ratios.append(ton / toff)
    t_off = min(times_off)
    t_on = min(times_on)
    overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    return {
        "claim": "repro.obs tracing costs <=3% on the homogeneous "
                 "2048^2 tiled FFT path",
        "surface": [OBS_SURFACE, OBS_SURFACE],
        "tile": [OBS_TILE, OBS_TILE],
        "repeats": OVERHEAD_REPEATS,
        "timings_s": {
            "tracing_off_best": t_off,
            "tracing_on_best": t_on,
            "tracing_off_all": times_off,
            "tracing_on_all": times_on,
        },
        "overhead": overhead,
        "spans_per_traced_run": span_count,
        "counter_increments_per_traced_run": counter_total,
    }


def measure_jobs_overhead() -> dict:
    """Time the clean 2048^2 serial tiled run plain vs resilient.

    The resilient path (``retry=RetryPolicy()``) adds the retrying
    scheduler, per-tile bookkeeping and the failure machinery around
    every tile even when nothing fails; the gate holds that cost to a
    small fraction of the plain path.  Overhead is the median of
    per-pair ratios over order-alternated back-to-back runs, which
    stays inside the tight 2% budget where independent best-of minima
    do not.
    """
    _import_repro()
    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.jobs import RetryPolicy
    from repro.parallel.executor import generate_tiled
    from repro.parallel.tiles import TilePlan

    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    gen = ConvolutionGenerator(spec, grid, truncation=OBS_TRUNC,
                               engine="fft")
    noise = BlockNoise(seed=43)
    plan = TilePlan(total_nx=OBS_SURFACE, total_ny=OBS_SURFACE,
                    tile_nx=OBS_TILE, tile_ny=OBS_TILE)
    policy = RetryPolicy()

    def run_plain() -> float:
        t0 = time.perf_counter()
        generate_tiled(gen, noise, plan, backend="serial")
        return time.perf_counter() - t0

    def run_resilient() -> float:
        t0 = time.perf_counter()
        generate_tiled(gen, noise, plan, backend="serial", retry=policy)
        return time.perf_counter() - t0

    # warm the plan cache AND both scheduler paths: the 2% budget is
    # tight enough that first-call allocation noise would dominate it
    run_plain()
    run_resilient()

    # The 2% budget sits inside this machine's run-to-run noise band, so
    # neither best-of nor totals are stable enough.  Instead: time the
    # two modes back to back (adjacent runs share whatever drift is
    # happening), alternate which mode goes first to cancel ordering
    # bias, and take the median of the per-pair ratios so one noisy pair
    # cannot move the verdict.
    times_plain, times_resilient, ratios = [], [], []
    for k in range(OVERHEAD_REPEATS):
        if k % 2 == 0:
            tp, tr = run_plain(), run_resilient()
        else:
            tr, tp = run_resilient(), run_plain()
        times_plain.append(tp)
        times_resilient.append(tr)
        ratios.append(tr / tp)
    t_plain = min(times_plain)
    t_resilient = min(times_resilient)
    overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    return {
        "claim": "the fault-tolerant executor path costs <=2% on a "
                 "clean homogeneous 2048^2 serial tiled run",
        "surface": [OBS_SURFACE, OBS_SURFACE],
        "tile": [OBS_TILE, OBS_TILE],
        "repeats": OVERHEAD_REPEATS,
        "retry_policy": policy.to_dict(),
        "timings_s": {
            "plain_best": t_plain,
            "resilient_best": t_resilient,
            "plain_all": times_plain,
            "resilient_all": times_resilient,
        },
        "overhead": overhead,
    }


def measure_store_overhead() -> dict:
    """Time the 4096^2 serial tiled run in-memory vs store-backed.

    The store path adds the async writeback pipeline: every 512^2 tile
    crosses a bounded queue and is ``pwrite``-written to the heights
    file by a background thread while the next tile computes.  The gate
    holds that full-surface disk writeback to a small fraction of the
    in-memory run.  Same pairing/median methodology as
    ``measure_jobs_overhead`` (the budget sits near machine noise).
    """
    import os
    import shutil
    import tempfile

    _import_repro()
    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.io.store import SurfaceStore
    from repro.parallel.executor import generate_tiled
    from repro.parallel.tiles import TilePlan

    # Flush dirty pages left by whatever ran before this measurement
    # (e.g. a full test-suite pass that wrote gigabytes of stores):
    # background writeback steals disk bandwidth from the store-backed
    # passes but not from the in-memory passes, which asymmetrically
    # inflates the measured ratio well past the real overhead.
    os.sync()

    surface_n = 4096
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    gen = ConvolutionGenerator(spec, grid, truncation=OBS_TRUNC,
                               engine="fft")
    noise = BlockNoise(seed=47)
    plan = TilePlan(total_nx=surface_n, total_ny=surface_n,
                    tile_nx=OBS_TILE, tile_ny=OBS_TILE)

    def run_memory() -> float:
        t0 = time.perf_counter()
        generate_tiled(gen, noise, plan, backend="serial")
        return time.perf_counter() - t0

    def run_store() -> float:
        scratch = tempfile.mkdtemp(prefix="store-gate-")
        try:
            store = SurfaceStore.create(
                Path(scratch) / "s", shape=(surface_n, surface_n),
                chunk=(OBS_TILE, OBS_TILE),
            )
            t0 = time.perf_counter()
            generate_tiled(gen, noise, plan, backend="serial", out=store)
            elapsed = time.perf_counter() - t0
            store.close()
            return elapsed
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    # warm plan cache, FFT workspaces and both schedulers
    gen.generate_window(noise, 0, 0, OBS_TILE, OBS_TILE)
    run_memory()
    run_store()

    times_memory, times_store, ratios = [], [], []
    for k in range(OVERHEAD_REPEATS):
        if k % 2 == 0:
            tm, ts = run_memory(), run_store()
        else:
            ts, tm = run_store(), run_memory()
        times_memory.append(tm)
        times_store.append(ts)
        ratios.append(ts / tm)
    overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    return {
        "claim": "store-backed writeback costs <=5% over the in-memory "
                 "tiled run at 4096^2",
        "surface": [surface_n, surface_n],
        "tile": [OBS_TILE, OBS_TILE],
        "chunk": [OBS_TILE, OBS_TILE],
        "bytes_written_per_run": surface_n * surface_n * 8,
        "repeats": OVERHEAD_REPEATS,
        "timings_s": {
            "memory_best": min(times_memory),
            "store_best": min(times_store),
            "memory_all": times_memory,
            "store_all": times_store,
        },
        "overhead": overhead,
    }


def measure_dtype_speedup() -> dict:
    """Time the 4096^2 homogeneous FFT engine pass float64 vs float32.

    Engine work only: each pass runs the per-tile valid correlations
    over the full tile plan with the noise windows read outside the
    timer — the same convention as the engine bench, because the noise
    plane costs the same in both precisions and its jitter would dilute
    the dtype delta this row exists to pin.  Speedup is the median of
    per-pair ratios over order-alternated back-to-back passes.  The row
    also records the max float32-vs-float64 surface deviation, so a
    "fast but wrong" single-precision path cannot pass.
    """
    _import_repro()
    import numpy as np

    from repro.core.convolution import (
        ConvolutionGenerator,
        apply_kernels_valid,
        noise_window_for,
    )
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.parallel.tiles import TilePlan

    surface_n = 4096
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    gen = ConvolutionGenerator(spec, grid, truncation=OBS_TRUNC,
                               engine="fft")
    noise = BlockNoise(seed=53)
    plan = TilePlan(total_nx=surface_n, total_ny=surface_n,
                    tile_nx=OBS_TILE, tile_ny=OBS_TILE)

    windows = []
    for t in plan:
        wx0, wy0, wnx, wny = noise_window_for(gen.kernel, t.x0, t.y0,
                                              t.nx, t.ny)
        windows.append(noise.window(wx0, wy0, wnx, wny))

    def run(dtype) -> float:
        t0 = time.perf_counter()
        for w in windows:
            apply_kernels_valid([gen.kernel], w, engine="fft", dtype=dtype)
        return time.perf_counter() - t0

    # warm plan cache + FFT workspaces for both precisions
    run(np.float64)
    run(np.float32)

    times_f64, times_f32, ratios = [], [], []
    for k in range(OVERHEAD_REPEATS):
        if k % 2 == 0:
            t64, t32 = run(np.float64), run(np.float32)
        else:
            t32, t64 = run(np.float32), run(np.float64)
        times_f64.append(t64)
        times_f32.append(t32)
        ratios.append(t64 / t32)
    speedup = sorted(ratios)[len(ratios) // 2]

    # accuracy companion: the float32 surface must track float64 (one
    # tile is enough — every tile exercises the same kernel/plan)
    w = windows[0]
    out64 = apply_kernels_valid([gen.kernel], w, engine="fft")[0]
    out32 = apply_kernels_valid([gen.kernel], w, engine="fft",
                                dtype=np.float32)[0]
    maxdev = float(np.abs(out32.astype(np.float64) - out64).max())

    return {
        "claim": "float32 engine mode >=1.3x over float64 on the "
                 "homogeneous 4096^2 tiled FFT path, tracking float64 "
                 "to single-precision rounding",
        "surface": [surface_n, surface_n],
        "tile": [OBS_TILE, OBS_TILE],
        "kernel": list(gen.footprint),
        "tiles": len(plan),
        "repeats": OVERHEAD_REPEATS,
        "timings_s": {
            "float64_best": min(times_f64),
            "float32_best": min(times_f32),
            "float64_all": times_f64,
            "float32_all": times_f32,
        },
        "speedup_float32_vs_float64": speedup,
        "max_abs_dev_float32_vs_float64": maxdev,
    }


def _usable_cores() -> int:
    import os

    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def measure_dist_scaling(workers_counts=(1, 2)) -> dict:
    """Throughput of ``generate_dist`` at 1 vs 2 worker processes.

    Runs the homogeneous 8192^2 tiled FFT workload (the engine bench's
    dx=1 / cl=24 / 129^2-kernel configuration, 512^2 tiles) through the
    coordinator/worker runtime once per worker count, each into a fresh
    scratch store.  Workers are real ``python -m repro dist worker``
    subprocesses, so the measurement includes the full distribution tax:
    process startup, recipe rebuild, socket leases, shared-store
    writeback, coordinator-side fsync.

    Each run's heights are hashed so the row also pins the dist
    invariant that matters more than speed: worker count may change
    wall time, never bytes.
    """
    import hashlib
    import shutil
    import tempfile

    _import_repro()
    import numpy as np

    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.dist.executor import generate_dist
    from repro.io.store import SurfaceStore
    from repro.parallel.tiles import TilePlan

    n, tile = DIST_SURFACE, DIST_TILE
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    rebuild = {
        "kind": "convolution",
        "spectrum": spec.to_dict(),
        "grid": {"nx": 256, "ny": 256, "lx": 256.0, "ly": 256.0},  # dx = 1
        "truncation": list(OBS_TRUNC),
        "engine": "fft",
        "dtype": "float64",
    }
    noise = BlockNoise(seed=59)
    plan = TilePlan(total_nx=n, total_ny=n, tile_nx=tile, tile_ny=tile)

    def run(workers: int):
        scratch = tempfile.mkdtemp(prefix="dist-gate-")
        try:
            store = SurfaceStore.create(
                Path(scratch) / "s", shape=(n, n), chunk=(tile, tile),
            )
            t0 = time.perf_counter()
            surface = generate_dist(rebuild, noise, plan, store,
                                    workers=workers, lease_timeout_s=300.0)
            elapsed = time.perf_counter() - t0
            digest = hashlib.sha256(
                np.ascontiguousarray(surface.heights).tobytes()
            ).hexdigest()
            lease = surface.provenance["dist"]["lease"]
            store.close()
            return elapsed, digest, lease
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    timings, digests, leases = {}, {}, {}
    for workers in workers_counts:
        elapsed, digest, lease = run(workers)
        key = f"workers_{workers}"
        timings[key] = elapsed
        digests[key] = digest
        leases[key] = lease

    base = f"workers_{workers_counts[0]}"
    top = f"workers_{workers_counts[-1]}"
    return {
        "claim": "dist backend: 2 workers >= 1.6x throughput over 1 on "
                 "the homogeneous 8192^2 path (enforced with >= 2 usable "
                 "cores); worker count never changes the bytes",
        "surface": [n, n],
        "tile": [tile, tile],
        "tiles": len(plan),
        "workers_counts": list(workers_counts),
        "usable_cores": _usable_cores(),
        "timings_s": timings,
        "throughput_samples_per_s": {
            k: n * n / t for k, t in timings.items()
        },
        "speedup": timings[base] / timings[top],
        "bit_identical_across_worker_counts":
            len(set(digests.values())) == 1,
        "heights_sha256": digests,
        "lease": leases,
    }


def measure_telemetry_overhead() -> dict:
    """Time the 2048^2 dist run with live telemetry off vs on.

    "On" means the full PR-8 telemetry plane: worker heartbeat frames
    every 0.25s (tile compute moved to a background thread so the
    socket stays responsive), coordinator-side :class:`RunTracker`
    folding, and the ``/metrics`` + ``/status`` + ``/health`` HTTP
    status thread bound to an OS-assigned port.  "Off" is the exact
    pre-heartbeat wire exchange.  Overhead is the median of per-pair
    ratios over order-alternated back-to-back runs (the budget sits
    near dist-run noise, same methodology as the jobs/store rows), and
    both modes' heights are hashed so the row also pins the obs
    contract: telemetry may cost milliseconds, never bits.
    """
    import hashlib
    import shutil
    import tempfile

    _import_repro()
    import numpy as np

    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.dist.executor import generate_dist
    from repro.io.store import SurfaceStore
    from repro.parallel.tiles import TilePlan

    n, tile = OBS_SURFACE, OBS_TILE
    heartbeat_s = 0.25
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    rebuild = {
        "kind": "convolution",
        "spectrum": spec.to_dict(),
        "grid": {"nx": 256, "ny": 256, "lx": 256.0, "ly": 256.0},  # dx = 1
        "truncation": list(OBS_TRUNC),
        "engine": "fft",
        "dtype": "float64",
    }
    noise = BlockNoise(seed=61)
    plan = TilePlan(total_nx=n, total_ny=n, tile_nx=tile, tile_ny=tile)

    def run(telemetry: bool):
        scratch = tempfile.mkdtemp(prefix="telemetry-gate-")
        try:
            store = SurfaceStore.create(
                Path(scratch) / "s", shape=(n, n), chunk=(tile, tile),
            )
            kwargs = (
                {"heartbeat_s": heartbeat_s, "status_port": 0}
                if telemetry else {}
            )
            t0 = time.perf_counter()
            surface = generate_dist(rebuild, noise, plan, store,
                                    workers=2, lease_timeout_s=300.0,
                                    **kwargs)
            elapsed = time.perf_counter() - t0
            digest = hashlib.sha256(
                np.ascontiguousarray(surface.heights).tobytes()
            ).hexdigest()
            store.close()
            return elapsed, digest
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    # Warm both modes: worker subprocesses rebuild their plan caches per
    # run, so the warmup mainly settles the parent-side import state and
    # OS page/file caches the two modes share.
    run(False)
    run(True)

    times_off, times_on, ratios = [], [], []
    digests = set()
    for k in range(OVERHEAD_REPEATS):
        if k % 2 == 0:
            (toff, doff), (ton, don) = run(False), run(True)
        else:
            (ton, don), (toff, doff) = run(True), run(False)
        times_off.append(toff)
        times_on.append(ton)
        ratios.append(ton / toff)
        digests.update((doff, don))
    overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    return {
        "claim": "live telemetry (heartbeats + status HTTP endpoints) "
                 "costs <=2% on the 2048^2 2-worker dist path and never "
                 "changes the bytes",
        "surface": [n, n],
        "tile": [tile, tile],
        "tiles": len(plan),
        "workers": 2,
        "heartbeat_s": heartbeat_s,
        "repeats": OVERHEAD_REPEATS,
        "timings_s": {
            "telemetry_off_best": min(times_off),
            "telemetry_on_best": min(times_on),
            "telemetry_off_all": times_off,
            "telemetry_on_all": times_on,
        },
        "overhead": overhead,
        "bit_identical_on_vs_off": len(digests) == 1,
    }


def measure_serve_batching() -> dict:
    """Throughput of batched vs sequential shared-spectrum serving.

    The serving workload this row models: 8 clients concurrently
    request small (512^2) windows of the same noise plane (same seed,
    same window) under 4 distinct spectrum heights — the
    many-realisations / parameter-sweep pattern the serve front door
    batches.  "Batched" runs all 8 through one
    :class:`repro.serve.batch.Batcher` group (one noise read, one
    forward-FFT set shared across the group, value-equal kernels
    collapsed); "sequential" generates the same 8 replies one solo
    ``generate_window`` pass at a time, each reading its own noise —
    what serving would cost without the batcher.  Speedup is the median
    of per-pair ratios over order-alternated back-to-back runs, and
    every batched reply is compared byte-for-byte against its solo
    counterpart: batching may change wall time, never bytes.
    """
    import threading

    _import_repro()
    import numpy as np

    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum
    from repro.serve.batch import Batcher, BatchItem

    n = 512
    seed = 67
    requests = 8
    h_values = (0.5, 1.0, 1.5, 2.0)
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    gens = [
        ConvolutionGenerator(
            GaussianSpectrum(h=h_values[i % len(h_values)],
                             clx=24.0, cly=24.0),
            grid, truncation=OBS_TRUNC, engine="fft",
        )
        for i in range(requests)
    ]

    def run_sequential():
        t0 = time.perf_counter()
        outs = [
            np.asarray(g.generate_window(BlockNoise(seed=seed), 0, 0, n, n))
            for g in gens
        ]
        return time.perf_counter() - t0, outs

    def run_batched():
        batcher = Batcher(linger_s=0.25, max_batch=requests)
        batcher.start()
        results: list = [None] * requests
        errors: list = []
        lock = threading.Lock()
        done = threading.Event()

        def make_callbacks(i):
            def on_done(heights, meta):
                with lock:
                    results[i] = (np.asarray(heights), meta)
                    if all(r is not None for r in results):
                        done.set()

            def on_error(exc):
                with lock:
                    errors.append(exc)
                    done.set()

            return on_done, on_error

        try:
            t0 = time.perf_counter()
            for i, g in enumerate(gens):
                on_done, on_error = make_callbacks(i)
                batcher.submit(BatchItem(
                    generator=g, seed=seed, noise_block=None,
                    window=(0, 0, n, n),
                    on_done=on_done, on_error=on_error,
                ))
            if not done.wait(120.0):
                raise RuntimeError("batched serve run timed out")
            elapsed = time.perf_counter() - t0
        finally:
            batcher.stop()
        if errors:
            raise errors[0]
        return elapsed, results

    # warm: kernel plans, FFT workspaces, both execution paths
    run_sequential()
    _, warm = run_batched()
    batched_with = warm[0][1]["batched_with"]
    distinct_kernels = warm[0][1]["distinct_kernels"]

    times_seq, times_batched, ratios = [], [], []
    identical = True
    for k in range(OVERHEAD_REPEATS):
        if k % 2 == 0:
            (ts, outs), (tb, got) = run_sequential(), run_batched()
        else:
            (tb, got), (ts, outs) = run_batched(), run_sequential()
        times_seq.append(ts)
        times_batched.append(tb)
        ratios.append(ts / tb)
        identical = identical and all(
            got[i][0].tobytes() == outs[i].tobytes()
            for i in range(requests)
        )
    speedup = sorted(ratios)[len(ratios) // 2]
    return {
        "claim": "serve batching: 8 concurrent same-noise 512^2 requests "
                 ">= 1.5x throughput over sequential solo generation, "
                 "every reply bit-identical to its solo counterpart",
        "window": [n, n],
        "requests": requests,
        "h_values": list(h_values),
        "kernel": list(gens[0].footprint),
        "batched_with": batched_with,
        "distinct_kernels": distinct_kernels,
        "repeats": OVERHEAD_REPEATS,
        "timings_s": {
            "sequential_best": min(times_seq),
            "batched_best": min(times_batched),
            "sequential_all": times_seq,
            "batched_all": times_batched,
        },
        "speedup_batched_vs_sequential": speedup,
        "bit_identical_per_request": identical,
    }


def measure_circulant_throughput() -> dict:
    """Field throughput of the circulant oracle vs the convolution path.

    Informational row (the oracle is a test instrument, not a
    production engine — there is no speed contract either way), plus
    one hard gate: the oracle's embedding on this configuration must be
    nonnegative definite up to rounding (``eig_clipped_mass`` <=
    1e-12), because a clipped embedding would make the "exact" sampler
    silently approximate and quietly weaken every oracle-tier bound.
    The circulant sampler yields two independent fields per torus FFT
    (real and imaginary parts), so its per-field rate is half its
    per-draw rate.
    """
    _import_repro()
    from repro.core.circulant import CirculantGenerator
    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra import GaussianSpectrum

    n = 512
    draws = 6
    grid = Grid2D(nx=n, ny=n, lx=float(n), ly=float(n))  # dx = 1
    spec = GaussianSpectrum(h=1.0, clx=24.0, cly=24.0)
    circ = CirculantGenerator(spec, grid)
    conv = ConvolutionGenerator(spec, grid, truncation=OBS_TRUNC,
                                engine="fft")

    # warm: builds the embedding eigenvalues / the kernel plan
    circ.generate_pair(seed=0)
    conv.generate(seed=0)

    t0 = time.perf_counter()
    for i in range(draws):
        circ.generate_pair(seed=1 + i)
    t_circ = time.perf_counter() - t0
    circ_fields_per_s = 2 * draws / t_circ

    t0 = time.perf_counter()
    for i in range(draws):
        conv.generate(seed=1 + i)
    t_conv = time.perf_counter() - t0
    conv_fields_per_s = draws / t_conv

    return {
        "claim": "circulant oracle throughput context; its embedding is "
                 "exact (no eigenvalue repair) on the bench "
                 "configuration",
        "surface": [n, n],
        "embedding": list(circ.embedding_info["embedding"]),
        "kernel": list(conv.footprint),
        "draws": draws,
        "timings_s": {
            "circulant_pair_draws": t_circ,
            "convolution_generates": t_conv,
        },
        "circulant_fields_per_s": circ_fields_per_s,
        "convolution_fields_per_s": conv_fields_per_s,
        "throughput_ratio_circulant_vs_convolution":
            circ_fields_per_s / conv_fields_per_s,
        "eig_clipped_mass": circ.embedding_info["eig_clipped_mass"],
        "eig_min": circ.embedding_info["eig_min"],
    }


def check(results: dict, max_slowdown: float, min_speedup: float,
          max_deviation: float) -> list:
    """Return the list of human-readable gate failures (empty = pass)."""
    failures = []
    timings = results["timings_s"]
    default_t = timings["fft_tiled"]  # auto dispatches to fft at this size
    seed_t = timings["legacy_fftconvolve_tiled"]
    ratio = default_t / seed_t
    if ratio > max_slowdown:
        failures.append(
            f"default path regressed: {default_t:.3f}s vs seed "
            f"{seed_t:.3f}s ({ratio:.2f}x > {max_slowdown:.2f}x allowed)"
        )
    speedup = results["speedup_fft_vs_spatial"]
    if speedup < min_speedup:
        failures.append(
            f"fft engine speedup {speedup:.2f}x over the spatial path is "
            f"below the required {min_speedup:.2f}x"
        )
    for key in ("max_abs_dev_fft_vs_legacy",
                "max_abs_dev_fft_vs_spatial_sample"):
        dev = results[key]
        if not dev <= max_deviation:  # catches NaN too
            failures.append(
                f"{key} = {dev:.3e} exceeds {max_deviation:.1e}"
            )
    return failures


def measure_verify_overhead() -> dict:
    """Time ``repro.verify`` against the generation run it gates.

    The verification subsystem is pitched as cheap enough to run on
    every generated surface, so the gate holds its streaming pass
    (radially averaged Welch PSD, ACF, RMS gates, Hurst fit) to a small
    fraction of the generation wall time it certifies.  Workload: the
    4096^2 store-backed self-affine run — the spectrum family with the
    most expensive verification (it adds the log-log Hurst slope fit
    and the roll-off plateau check on top of the common gates).
    Verification cost is held ~constant in surface area by the default
    ``VerifyConfig.max_windows`` window sampling, so this ratio tracks
    the verifier's fixed costs, not a lucky surface size.
    """
    import os
    import shutil
    import tempfile

    _import_repro()
    from repro.core.convolution import ConvolutionGenerator
    from repro.core.grid import Grid2D
    from repro.core.rng import BlockNoise
    from repro.core.spectra_ext import SelfAffineSpectrum
    from repro.io.store import SurfaceStore
    from repro.parallel.executor import generate_tiled
    from repro.parallel.tiles import TilePlan
    from repro.verify import verify_store

    os.sync()  # see measure_store_overhead

    surface_n = 4096
    seed = 42
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    spec = SelfAffineSpectrum(sigma=1.0, hurst=0.8, qr=0.4)
    gen = ConvolutionGenerator(spec, grid, truncation=OBS_TRUNC,
                               engine="fft")
    noise = BlockNoise(seed=seed)
    plan = TilePlan(total_nx=surface_n, total_ny=surface_n,
                    tile_nx=OBS_TILE, tile_ny=OBS_TILE)

    scratch = tempfile.mkdtemp(prefix="verify-gate-")
    store_path = Path(scratch) / "s"

    def run_generate() -> float:
        shutil.rmtree(store_path, ignore_errors=True)
        store = SurfaceStore.create(
            store_path, shape=(surface_n, surface_n),
            chunk=(OBS_TILE, OBS_TILE),
            meta={"seed": seed, "spectrum": spec.to_dict()},
        )
        t0 = time.perf_counter()
        generate_tiled(gen, noise, plan, backend="serial", out=store)
        elapsed = time.perf_counter() - t0
        store.close()
        return elapsed

    def run_verify():
        t0 = time.perf_counter()
        report = verify_store(store_path)
        return time.perf_counter() - t0, report

    # Warm the plan cache, FFT workspaces and the page cache, then time
    # generation (expensive: best of a few full runs) and verification
    # (cheap: median of several passes over the final store).
    gen.generate_window(noise, 0, 0, OBS_TILE, OBS_TILE)
    times_generate = [run_generate() for _ in range(3)]
    run_verify()
    times_verify, report = [], None
    for _ in range(5):
        t, report = run_verify()
        times_verify.append(t)
    shutil.rmtree(scratch, ignore_errors=True)

    gen_best = min(times_generate)
    verify_median = sorted(times_verify)[len(times_verify) // 2]
    return {
        "claim": "streaming verification costs <=10% of the generation "
                 "wall time it gates at 4096^2",
        "surface": [surface_n, surface_n],
        "tile": [OBS_TILE, OBS_TILE],
        "spectrum": spec.to_dict(),
        "segment": report.config["segment"],
        "stride": report.config["stride"],
        "report_passed": bool(report.passed),
        "timings_s": {
            "generate_best": gen_best,
            "verify_median": verify_median,
            "generate_all": times_generate,
            "verify_all": times_verify,
        },
        "overhead": verify_median / gen_best,
    }


def check_inhomo(results: dict, min_batch_speedup: float,
                 max_deviation: float, max_homog_slowdown: float) -> list:
    """Gate failures for the batched multi-region bench row."""
    failures = []
    speedup = results["speedup_batched_vs_per_region"]
    if not speedup >= min_batch_speedup:  # catches NaN too
        failures.append(
            f"batched multi-region speedup {speedup:.2f}x over the "
            f"per-region path is below the required "
            f"{min_batch_speedup:.2f}x"
        )
    dev = results["max_abs_dev_batched_vs_spatial_sample"]
    if not dev <= max_deviation:
        failures.append(
            f"max_abs_dev_batched_vs_spatial_sample = {dev:.3e} exceeds "
            f"{max_deviation:.1e}"
        )
    ratio = results["homogeneous_ratio"]
    if not ratio <= max_homog_slowdown:
        failures.append(
            f"homogeneous default path regressed: {ratio:.2f}x of the "
            f"seed baseline > {max_homog_slowdown:.2f}x allowed"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="?", type=Path,
                        default=DEFAULT_RESULTS,
                        help="engine bench results JSON "
                             "(default: benchmarks/out/engine_fft.json)")
    parser.add_argument("--inhomo-results", type=Path,
                        default=DEFAULT_INHOMO_RESULTS,
                        help="batched multi-region bench results JSON "
                             "(default: benchmarks/out/inhomo_batch.json)")
    parser.add_argument("--max-slowdown", type=float, default=1.10,
                        help="allowed default-path time as a multiple of "
                             "the seed baseline (default 1.10)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required fft-vs-spatial speedup (default 3.0)")
    parser.add_argument("--min-batch-speedup", type=float, default=2.0,
                        help="required batched-vs-per-region speedup on "
                             "the M=4 layout (default 2.0)")
    parser.add_argument("--max-homog-slowdown", type=float, default=1.10,
                        help="allowed homogeneous-path time as a multiple "
                             "of the seed baseline (default 1.10)")
    parser.add_argument("--max-deviation", type=float, default=1e-10,
                        help="allowed max abs deviation between engines")
    parser.add_argument("--max-obs-overhead", type=float, default=0.03,
                        help="allowed relative tracing overhead on the "
                             "homogeneous FFT path (default 0.03 = 3%%)")
    parser.add_argument("--obs-results", type=Path,
                        default=DEFAULT_OBS_RESULTS,
                        help="where to record the obs-overhead row "
                             "(default: benchmarks/out/obs_overhead.json)")
    parser.add_argument("--skip-obs-overhead", action="store_true",
                        help="skip the live tracing-overhead measurement")
    parser.add_argument("--max-jobs-overhead", type=float, default=0.02,
                        help="allowed relative overhead of the resilient "
                             "executor path on a clean tiled run "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--jobs-results", type=Path,
                        default=DEFAULT_JOBS_RESULTS,
                        help="where to record the jobs-overhead row "
                             "(default: benchmarks/out/jobs_overhead.json)")
    parser.add_argument("--skip-jobs-overhead", action="store_true",
                        help="skip the live resilient-executor overhead "
                             "measurement")
    parser.add_argument("--max-store-overhead", type=float, default=0.05,
                        help="allowed relative overhead of the store-backed "
                             "writeback path vs the in-memory tiled run "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--store-results", type=Path,
                        default=DEFAULT_STORE_RESULTS,
                        help="where to record the store-overhead row "
                             "(default: benchmarks/out/store_overhead.json)")
    parser.add_argument("--skip-store-overhead", action="store_true",
                        help="skip the live store-writeback overhead "
                             "measurement")
    parser.add_argument("--min-dtype-speedup", type=float, default=1.3,
                        help="required float32-vs-float64 engine speedup "
                             "on the homogeneous 4096^2 path (default 1.3)")
    parser.add_argument("--max-dtype-deviation", type=float, default=1e-4,
                        help="allowed max abs float32-vs-float64 surface "
                             "deviation (default 1e-4; measured ~1e-6)")
    parser.add_argument("--dtype-results", type=Path,
                        default=DEFAULT_DTYPE_RESULTS,
                        help="where to record the dtype-speedup row "
                             "(default: benchmarks/out/engine_dtype.json)")
    parser.add_argument("--skip-dtype-speedup", action="store_true",
                        help="skip the live float32-speedup measurement")
    parser.add_argument("--min-dist-speedup", type=float, default=1.6,
                        help="required 2-worker-vs-1 throughput speedup "
                             "for the dist backend on the homogeneous "
                             "8192^2 path; enforced only with >= 2 usable "
                             "cores (default 1.6)")
    parser.add_argument("--dist-results", type=Path,
                        default=DEFAULT_DIST_RESULTS,
                        help="where to record the dist-scaling row "
                             "(default: benchmarks/out/dist_scaling.json)")
    parser.add_argument("--skip-dist", action="store_true",
                        help="skip the dist worker-scaling measurement")
    parser.add_argument("--max-telemetry-overhead", type=float,
                        default=0.02,
                        help="allowed relative overhead of live telemetry "
                             "(heartbeats + status endpoints) on the "
                             "2048^2 2-worker dist path "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--telemetry-results", type=Path,
                        default=DEFAULT_TELEMETRY_RESULTS,
                        help="where to record the telemetry-overhead row "
                             "(default: benchmarks/out/"
                             "telemetry_overhead.json)")
    parser.add_argument("--skip-telemetry", action="store_true",
                        help="skip the live telemetry-overhead "
                             "measurement")
    parser.add_argument("--min-serve-batch-speedup", type=float,
                        default=1.5,
                        help="required batched-vs-sequential throughput "
                             "speedup for 8 concurrent same-noise small "
                             "requests through the serve batcher "
                             "(default 1.5)")
    parser.add_argument("--serve-results", type=Path,
                        default=DEFAULT_SERVE_RESULTS,
                        help="where to record the serve-batching row "
                             "(default: benchmarks/out/serve_batching.json)")
    parser.add_argument("--skip-serve", action="store_true",
                        help="skip the serve-batching measurement")
    parser.add_argument("--max-eig-clipped-mass", type=float, default=1e-12,
                        help="allowed clipped-eigenvalue mass in the "
                             "circulant oracle's embedding (default 1e-12)")
    parser.add_argument("--circulant-results", type=Path,
                        default=DEFAULT_CIRCULANT_RESULTS,
                        help="where to record the circulant throughput row "
                             "(default: benchmarks/out/"
                             "circulant_throughput.json)")
    parser.add_argument("--skip-circulant", action="store_true",
                        help="skip the circulant-vs-convolution "
                             "throughput measurement")
    parser.add_argument("--max-verify-overhead", type=float, default=0.10,
                        help="max repro.verify cost as a fraction of the "
                             "generation wall time it gates "
                             "(default: 0.10)")
    parser.add_argument("--verify-results", type=Path,
                        default=DEFAULT_VERIFY_RESULTS,
                        help="where to record the verify overhead row "
                             "(default: benchmarks/out/"
                             "verify_overhead.json)")
    parser.add_argument("--skip-verify", action="store_true",
                        help="skip the verification-overhead measurement")
    args = parser.parse_args(argv)

    failures = []
    if not args.skip_obs_overhead:
        # Live measurement first: the obs row is recorded even when the
        # bench JSONs are missing (that still exits 2 below).
        obs_row = measure_obs_overhead()
        _write_row(args.obs_results, obs_row)
        print(
            f"obs gate: tracing off {obs_row['timings_s']['tracing_off_best']:.3f}s, "
            f"on {obs_row['timings_s']['tracing_on_best']:.3f}s, overhead "
            f"{obs_row['overhead'] * 100:.2f}% "
            f"({obs_row['spans_per_traced_run']} spans)"
        )
        if not obs_row["overhead"] <= args.max_obs_overhead:  # catches NaN
            failures.append(
                f"tracing overhead {obs_row['overhead'] * 100:.2f}% exceeds "
                f"the {args.max_obs_overhead * 100:.1f}% budget"
            )

    if not args.skip_jobs_overhead:
        jobs_row = measure_jobs_overhead()
        _write_row(args.jobs_results, jobs_row)
        print(
            f"jobs gate: plain {jobs_row['timings_s']['plain_best']:.3f}s, "
            f"resilient {jobs_row['timings_s']['resilient_best']:.3f}s, "
            f"overhead {jobs_row['overhead'] * 100:.2f}%"
        )
        if not jobs_row["overhead"] <= args.max_jobs_overhead:  # catches NaN
            failures.append(
                f"resilient executor overhead "
                f"{jobs_row['overhead'] * 100:.2f}% exceeds the "
                f"{args.max_jobs_overhead * 100:.1f}% budget"
            )

    if not args.skip_store_overhead:
        store_row = measure_store_overhead()
        _write_row(args.store_results, store_row)
        print(
            f"store gate: memory "
            f"{store_row['timings_s']['memory_best']:.3f}s, store "
            f"{store_row['timings_s']['store_best']:.3f}s, overhead "
            f"{store_row['overhead'] * 100:.2f}%"
        )
        if not store_row["overhead"] <= args.max_store_overhead:  # NaN too
            failures.append(
                f"store writeback overhead "
                f"{store_row['overhead'] * 100:.2f}% exceeds the "
                f"{args.max_store_overhead * 100:.1f}% budget"
            )

    if not args.skip_dtype_speedup:
        dtype_row = measure_dtype_speedup()
        _write_row(args.dtype_results, dtype_row)
        print(
            f"dtype gate: float64 "
            f"{dtype_row['timings_s']['float64_best']:.3f}s, float32 "
            f"{dtype_row['timings_s']['float32_best']:.3f}s, speedup "
            f"{dtype_row['speedup_float32_vs_float64']:.2f}x, maxdev "
            f"{dtype_row['max_abs_dev_float32_vs_float64']:.2e}"
        )
        speedup = dtype_row["speedup_float32_vs_float64"]
        if not speedup >= args.min_dtype_speedup:  # catches NaN too
            failures.append(
                f"float32 engine speedup {speedup:.2f}x is below the "
                f"required {args.min_dtype_speedup:.2f}x"
            )
        dev = dtype_row["max_abs_dev_float32_vs_float64"]
        if not dev <= args.max_dtype_deviation:
            failures.append(
                f"float32 surface deviates from float64 by {dev:.3e} "
                f"(> {args.max_dtype_deviation:.1e} allowed)"
            )

    if not args.skip_dist:
        dist_row = measure_dist_scaling()
        _write_row(args.dist_results, dist_row)
        cores = dist_row["usable_cores"]
        print(
            f"dist gate: 1 worker "
            f"{dist_row['timings_s']['workers_1']:.3f}s, 2 workers "
            f"{dist_row['timings_s']['workers_2']:.3f}s, speedup "
            f"{dist_row['speedup']:.2f}x ({cores} usable core(s)), "
            f"bit-identical: "
            f"{dist_row['bit_identical_across_worker_counts']}"
        )
        if not dist_row["bit_identical_across_worker_counts"]:
            failures.append(
                "dist runs with different worker counts produced "
                "different bytes — sharding must never change the surface"
            )
        if cores >= 2:
            if not dist_row["speedup"] >= args.min_dist_speedup:  # NaN too
                failures.append(
                    f"dist 2-worker speedup {dist_row['speedup']:.2f}x is "
                    f"below the required {args.min_dist_speedup:.2f}x"
                )
        else:
            print(
                "dist gate: single usable core — speedup recorded as "
                "context, threshold not enforced"
            )

    if not args.skip_telemetry:
        tel_row = measure_telemetry_overhead()
        _write_row(args.telemetry_results, tel_row)
        print(
            f"telemetry gate: off "
            f"{tel_row['timings_s']['telemetry_off_best']:.3f}s, on "
            f"{tel_row['timings_s']['telemetry_on_best']:.3f}s, overhead "
            f"{tel_row['overhead'] * 100:.2f}%, bit-identical: "
            f"{tel_row['bit_identical_on_vs_off']}"
        )
        if not tel_row["bit_identical_on_vs_off"]:
            failures.append(
                "telemetry on vs off produced different bytes — the obs "
                "contract forbids telemetry from changing the surface"
            )
        if not tel_row["overhead"] <= args.max_telemetry_overhead:  # NaN
            failures.append(
                f"telemetry overhead {tel_row['overhead'] * 100:.2f}% "
                f"exceeds the {args.max_telemetry_overhead * 100:.1f}% "
                f"budget"
            )

    if not args.skip_serve:
        serve_row = measure_serve_batching()
        _write_row(args.serve_results, serve_row)
        print(
            f"serve gate: sequential "
            f"{serve_row['timings_s']['sequential_best']:.3f}s, batched "
            f"{serve_row['timings_s']['batched_best']:.3f}s, speedup "
            f"{serve_row['speedup_batched_vs_sequential']:.2f}x "
            f"({serve_row['batched_with']} requests/"
            f"{serve_row['distinct_kernels']} kernels), bit-identical: "
            f"{serve_row['bit_identical_per_request']}"
        )
        if not serve_row["bit_identical_per_request"]:
            failures.append(
                "serve batching produced bytes different from solo "
                "generation — batching must never change the surface"
            )
        speedup = serve_row["speedup_batched_vs_sequential"]
        if not speedup >= args.min_serve_batch_speedup:  # catches NaN too
            failures.append(
                f"serve batching speedup {speedup:.2f}x is below the "
                f"required {args.min_serve_batch_speedup:.2f}x"
            )

    if not args.skip_circulant:
        circ_row = measure_circulant_throughput()
        _write_row(args.circulant_results, circ_row)
        print(
            f"circulant gate: oracle "
            f"{circ_row['circulant_fields_per_s']:.1f} fields/s, "
            f"convolution {circ_row['convolution_fields_per_s']:.1f} "
            f"fields/s (ratio "
            f"{circ_row['throughput_ratio_circulant_vs_convolution']:.2f}x), "
            f"clipped mass {circ_row['eig_clipped_mass']:.1e}"
        )
        mass = circ_row["eig_clipped_mass"]
        if not mass <= args.max_eig_clipped_mass:  # catches NaN too
            failures.append(
                f"circulant embedding needed eigenvalue repair: clipped "
                f"mass {mass:.3e} > {args.max_eig_clipped_mass:.1e} — the "
                f"oracle is no longer exact on the bench configuration"
            )

    if not args.skip_verify:
        verify_row = measure_verify_overhead()
        _write_row(args.verify_results, verify_row)
        print(
            f"verify gate: generate "
            f"{verify_row['timings_s']['generate_best']:.3f}s, verify "
            f"{verify_row['timings_s']['verify_median']:.3f}s, ratio "
            f"{verify_row['overhead'] * 100:.2f}% (segment "
            f"{verify_row['segment']}, stride {verify_row['stride']}), "
            f"report passed: {verify_row['report_passed']}"
        )
        if not verify_row["report_passed"]:
            failures.append(
                "the reference self-affine surface failed its own "
                "verification report — the generator and the verifier "
                "disagree about the requested spectrum"
            )
        if not verify_row["overhead"] <= args.max_verify_overhead:  # NaN
            failures.append(
                f"verification costs {verify_row['overhead'] * 100:.2f}% "
                f"of the generation wall time, over the "
                f"{args.max_verify_overhead * 100:.1f}% budget"
            )

    try:
        results = json.loads(args.results.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"engine gate: cannot read {args.results}: {exc}",
              file=sys.stderr)
        print("run: PYTHONPATH=src python -m pytest "
              "benchmarks/test_bench_engine_fft.py", file=sys.stderr)
        return 2
    try:
        inhomo = json.loads(args.inhomo_results.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"engine gate: cannot read {args.inhomo_results}: {exc}",
              file=sys.stderr)
        print("run: PYTHONPATH=src python -m pytest "
              "benchmarks/test_bench_inhomo_batch.py", file=sys.stderr)
        return 2

    failures += check(results, args.max_slowdown, args.min_speedup,
                      args.max_deviation)
    failures += check_inhomo(inhomo, args.min_batch_speedup,
                             args.max_deviation, args.max_homog_slowdown)
    timings = results["timings_s"]
    print(
        f"engine gate: fft {timings['fft_tiled']:.3f}s, seed "
        f"{timings['legacy_fftconvolve_tiled']:.3f}s, spatial (est) "
        f"{timings['spatial_estimated_tiled']:.1f}s, speedup "
        f"{results['speedup_fft_vs_spatial']:.1f}x"
    )
    itimings = inhomo["timings_s"]
    print(
        f"batch gate: batched {itimings['batched_tiled']:.3f}s, "
        f"per-region {itimings['per_region_tiled']:.3f}s, speedup "
        f"{inhomo['speedup_batched_vs_per_region']:.2f}x, homogeneous "
        f"ratio {inhomo['homogeneous_ratio']:.2f}x"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("engine gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
