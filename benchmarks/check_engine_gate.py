#!/usr/bin/env python
"""Perf-regression gate for the convolution engines.

Reads ``benchmarks/out/engine_fft.json`` (written by
``test_bench_engine_fft.py``) and fails when:

* the default path (``auto``, which dispatches to the FFT engine for
  production-size kernels) is more than ``--max-slowdown`` times the
  seed baseline (the pre-engine per-tile ``scipy.signal.fftconvolve``
  path) — the "don't regress the default" contract;
* the FFT engine's speedup over the spatial reference path falls below
  ``--min-speedup`` — the engine's reason to exist;
* either accuracy deviation exceeds ``--max-deviation``.

Usage (CI tier-2, after running the bench)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine_fft.py
    python benchmarks/check_engine_gate.py

Exit code 0 on pass, 1 on any gate failure, 2 when the results file is
missing or unreadable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).resolve().parent / "out" / "engine_fft.json"


def check(results: dict, max_slowdown: float, min_speedup: float,
          max_deviation: float) -> list:
    """Return the list of human-readable gate failures (empty = pass)."""
    failures = []
    timings = results["timings_s"]
    default_t = timings["fft_tiled"]  # auto dispatches to fft at this size
    seed_t = timings["legacy_fftconvolve_tiled"]
    ratio = default_t / seed_t
    if ratio > max_slowdown:
        failures.append(
            f"default path regressed: {default_t:.3f}s vs seed "
            f"{seed_t:.3f}s ({ratio:.2f}x > {max_slowdown:.2f}x allowed)"
        )
    speedup = results["speedup_fft_vs_spatial"]
    if speedup < min_speedup:
        failures.append(
            f"fft engine speedup {speedup:.2f}x over the spatial path is "
            f"below the required {min_speedup:.2f}x"
        )
    for key in ("max_abs_dev_fft_vs_legacy",
                "max_abs_dev_fft_vs_spatial_sample"):
        dev = results[key]
        if not dev <= max_deviation:  # catches NaN too
            failures.append(
                f"{key} = {dev:.3e} exceeds {max_deviation:.1e}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="?", type=Path,
                        default=DEFAULT_RESULTS,
                        help="engine bench results JSON "
                             "(default: benchmarks/out/engine_fft.json)")
    parser.add_argument("--max-slowdown", type=float, default=1.10,
                        help="allowed default-path time as a multiple of "
                             "the seed baseline (default 1.10)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required fft-vs-spatial speedup (default 3.0)")
    parser.add_argument("--max-deviation", type=float, default=1e-10,
                        help="allowed max abs deviation between engines")
    args = parser.parse_args(argv)

    try:
        results = json.loads(args.results.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"engine gate: cannot read {args.results}: {exc}",
              file=sys.stderr)
        print("run: PYTHONPATH=src python -m pytest "
              "benchmarks/test_bench_engine_fft.py", file=sys.stderr)
        return 2

    failures = check(results, args.max_slowdown, args.min_speedup,
                     args.max_deviation)
    timings = results["timings_s"]
    print(
        f"engine gate: fft {timings['fft_tiled']:.3f}s, seed "
        f"{timings['legacy_fftconvolve_tiled']:.3f}s, spatial (est) "
        f"{timings['spatial_estimated_tiled']:.1f}s, speedup "
        f"{results['speedup_fft_vs_spatial']:.1f}x"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("engine gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
