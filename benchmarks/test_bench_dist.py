"""Dist scale-out — coordinator/worker throughput scaling.

Runs the engine gate's dist-scaling measurement (the homogeneous 8192^2
tiled FFT workload through ``generate_dist`` with 1 vs 2 real worker
subprocesses) and records the row the gate script reads.  The contract
has two halves with different strictness:

- **bit-identity across worker counts** is absolute — sharding is a
  scheduling decision and may never change the surface;
- **>= 1.6x two-worker speedup** is a hardware claim, asserted only when
  the machine actually has two usable cores (same convention as the A2
  parallel bench).
"""

from __future__ import annotations

from check_engine_gate import _usable_cores, measure_dist_scaling

MIN_DIST_SPEEDUP = 1.6


def test_bench_dist_scaling(record):
    row = measure_dist_scaling()
    record("dist_scaling", row)

    assert row["bit_identical_across_worker_counts"], (
        "dist runs with different worker counts produced different bytes"
    )
    for key, lease in row["lease"].items():
        assert lease["pending"] == 0, f"{key} left tiles pending"
        assert lease["failures"] == 0, f"{key} reported tile failures"
    if _usable_cores() >= 2:
        assert row["speedup"] >= MIN_DIST_SPEEDUP, (
            f"2-worker speedup {row['speedup']:.2f}x below "
            f"{MIN_DIST_SPEEDUP}x with {row['usable_cores']} cores"
        )
