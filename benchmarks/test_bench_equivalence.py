"""Claim C1 — the convolution method equals the direct DFT method.

Section 2.4 derives the convolution method from the direct DFT method
via the convolution theorem (eqns 30-36).  This bench verifies the
derivation numerically — with matched noise the two surfaces coincide to
rounding for all three spectral families — and times both methods on the
same grid (the convolution method's full-kernel FFT path has the same
complexity; its advantage appears with truncation, bench C2).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import bench_n

from repro.core.convolution import convolve_full
from repro.core.direct_dft import (
    direct_surface_from_array,
    hermitian_array_from_noise,
    hermitian_random_array,
)
from repro.core.grid import Grid2D
from repro.core.rng import standard_normal_field
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)

SPECTRA = {
    "gaussian": GaussianSpectrum(h=1.0, clx=40.0, cly=40.0),
    "power_law_2": PowerLawSpectrum(h=1.5, clx=60.0, cly=60.0, order=2.0),
    "exponential": ExponentialSpectrum(h=2.0, clx=80.0, cly=80.0),
}


@pytest.fixture(scope="module")
def grid():
    n = min(bench_n(), 512)
    return Grid2D(nx=n, ny=n, lx=2.0 * n, ly=2.0 * n)


@pytest.mark.parametrize("name", sorted(SPECTRA))
def test_bench_equivalence(benchmark, grid, record, name):
    spec = SPECTRA[name]
    noise = standard_normal_field(grid.shape, seed=7)
    u = hermitian_array_from_noise(noise)

    f_conv = benchmark.pedantic(
        lambda: convolve_full(spec, grid, noise=noise), rounds=3, iterations=1
    )
    f_direct = direct_surface_from_array(spec, grid, u)
    scale = float(np.max(np.abs(f_conv)))
    max_err = float(np.max(np.abs(f_conv - f_direct)))
    assert max_err < 1e-10 * scale
    record(f"c1_equivalence_{name}", {
        "claim": "C1: convolution method == direct DFT method",
        "spectrum": name,
        "grid": list(grid.shape),
        "max_abs_difference": max_err,
        "surface_scale": scale,
    })


def test_bench_direct_method(benchmark, grid):
    """Timing reference: the direct DFT method end-to-end (eqns 19-30)."""
    spec = SPECTRA["gaussian"]

    def run():
        u = hermitian_random_array(grid, seed=3)
        return direct_surface_from_array(spec, grid, u)

    f = benchmark.pedantic(run, rounds=3, iterations=1)
    assert f.std() == pytest.approx(spec.h, rel=0.35)
