"""Shared infrastructure for the benchmark/reproduction harness.

Every bench regenerates one experiment row of DESIGN.md §3: it times the
computation with pytest-benchmark, asserts the reproduction criteria, and
records a JSON result row under ``benchmarks/out/`` (the source of the
numbers in EXPERIMENTS.md).

Resolution: figure benches default to 512 samples per axis (seconds per
figure).  Set ``REPRO_BENCH_N=1024`` for the full-scale reference images.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict

import pytest

OUT_DIR = Path(__file__).resolve().parent / "out"

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as tier-2 ``bench``.

    Tier-1 CI runs ``pytest -m "not bench" tests benchmarks`` (or just
    the default ``pytest``, whose testpaths exclude this directory);
    tier-2 selects ``-m bench``.
    """
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


def bench_n(default: int = 512) -> int:
    """Samples per axis for figure benches (REPRO_BENCH_N overrides)."""
    return int(os.environ.get("REPRO_BENCH_N", default))


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def record(out_dir):
    """Write a named JSON result row for EXPERIMENTS.md."""

    def _record(name: str, payload: Dict[str, Any]) -> None:
        from _helpers import metrics_snapshot, write_bench_json

        # Every row carries the process metrics state (plan-cache hit
        # rate, live obs counters when tracing) as measurement context;
        # write_bench_json stamps schema version / git rev / timestamp.
        payload.setdefault("obs_metrics", metrics_snapshot())
        write_bench_json(out_dir / f"{name}.json", payload)

    return _record


def region_row(name: str, target_h: float, measured_h: float,
               target_cl: float | None = None,
               measured_cl: float | None = None) -> Dict[str, Any]:
    """One region's target-vs-measured row for the figure benches."""
    row: Dict[str, Any] = {
        "region": name,
        "target_h": target_h,
        "measured_h": measured_h,
        "h_rel_error": abs(measured_h - target_h) / target_h,
    }
    if target_cl is not None and measured_cl is not None:
        row.update(
            target_cl=target_cl,
            measured_cl=measured_cl,
            cl_rel_error=abs(measured_cl - target_cl) / target_cl,
        )
    return row
