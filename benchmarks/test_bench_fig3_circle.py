"""Figure 3 — circular region (pond) with a transition band.

Paper: "Figure 3 shows a 2D RRS with Exponential spectrum of h = 0.2 and
cl = 50 inside the circle of radius 500 and Gaussian spectrum of h = 1.0
and cl = 50 outside it.  The transition width was selected as T = 100."

Reproduction criteria: pond interior realises h = 0.2, field exterior
realises h = 1.0, and the measured local-std radial profile crosses the
midpoint inside the declared transition annulus [400, 600].
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import bench_n, region_row

from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.figures import REFERENCE_DOMAIN, default_grid, figure3_layout
from repro.io.pgm import render_terrain
from repro.stats.local import local_std_map


@pytest.fixture(scope="module")
def generator():
    return InhomogeneousGenerator(figure3_layout(), default_grid(bench_n()),
                                  truncation=0.999)


def test_bench_fig3(benchmark, generator, record, out_dir):
    surface = benchmark.pedantic(
        lambda: generator.generate(seed=2009), rounds=2, iterations=1
    )
    grid = generator.grid
    scale = grid.lx / REFERENCE_DOMAIN
    radius = 500.0 * scale
    half_width = 100.0 * scale
    centre = grid.lx / 2.0

    gx, gy = grid.meshgrid()
    r = np.hypot(gx - centre, gy - centre)
    pond = surface.heights[r < radius - half_width - 50.0 * scale]
    field = surface.heights[r > radius + half_width + 50.0 * scale]
    # NOTE: at radius 500 in a 1024 domain the pure-field region is only
    # the domain corners — exactly as in the paper's figure.
    assert pond.size > 1000 and field.size > 1000

    h_pond = float(pond.std())
    h_field = float(field.std())
    rows = [
        region_row("pond (exponential)", 0.2, h_pond),
        region_row("field (gaussian)", 1.0, h_field),
    ]
    assert h_pond == pytest.approx(0.2, rel=0.3)
    assert h_field == pytest.approx(1.0, rel=0.3)
    assert h_field > 3.0 * h_pond

    # transition placement: local std midpoint must fall inside the band
    win = max(8, int(50.0 * scale / grid.dx))
    std_map = local_std_map(surface.heights, win)
    off = win // 2
    r_map = r[off : off + std_map.shape[0], off : off + std_map.shape[1]]
    mid = 0.5 * (h_pond + h_field)
    ring = (r_map > radius - half_width) & (r_map < radius + half_width)
    inner = r_map < radius - half_width - 50.0 * scale
    assert np.median(std_map[inner]) < mid
    assert std_map[ring].min() < mid < std_map[ring].max()

    render_terrain(surface, path=out_dir / "fig3.ppm",
                   vertical_exaggeration=6.0)
    record("fig3", {
        "figure": "Figure 3 (circular pond, T = 100)",
        "n": grid.nx,
        "regions": rows,
        "transition_band": [radius - half_width, radius + half_width],
        "image": "fig3.ppm",
    })
