"""Claim C3 — DFT(w) reproduces the autocorrelation function.

The paper's accuracy check (below eqn 16): "the DFT of this weighting
array corresponds to the autocorrelation function ... useful for checking
the accuracy of the numerical results based on the DFT calculations."

This bench evaluates the check for all three spectral families across a
grid-resolution sweep and verifies that the discrepancy (spectral
truncation + discretisation error) decreases under refinement, with the
Gaussian family at machine precision already on coarse grids.
"""

from __future__ import annotations

import pytest
from conftest import bench_n

from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
)
from repro.validation.checks import variance_closure, weight_acf_error

SPECTRA = {
    "gaussian": GaussianSpectrum(h=1.0, clx=40.0, cly=40.0),
    "power_law_2": PowerLawSpectrum(h=1.5, clx=60.0, cly=60.0, order=2.0),
    "exponential": ExponentialSpectrum(h=2.0, clx=80.0, cly=80.0),
}
SIZES = [128, 256, 512, 1024]


def test_bench_c3_weight_accuracy(benchmark, record):
    rows = []
    for name, spec in SPECTRA.items():
        per_size = []
        for n in SIZES:
            grid = Grid2D(nx=n, ny=n, lx=2048.0, ly=2048.0)
            rep = weight_acf_error(spec, grid)
            per_size.append({
                "n": n,
                "max_abs_error": rep.max_abs_error,
                "rel_error_at_zero": rep.rel_error_at_zero,
                "variance_closure": variance_closure(spec, grid),
            })
        rows.append({"spectrum": name, "sweep": per_size})

        errs = [r["rel_error_at_zero"] for r in per_size]
        # refinement monotonically improves (or stays at) the closure
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:])), name
        if name == "gaussian":
            assert errs[0] < 1e-6  # effectively band-limited when coarse
            assert errs[-1] < 1e-12  # and exact once Nyquist covers the band
        else:
            assert errs[-1] < 0.05  # heavy tails: <5% at 1024^2

    grid = Grid2D(nx=512, ny=512, lx=2048.0, ly=2048.0)
    benchmark.pedantic(
        lambda: weight_acf_error(SPECTRA["exponential"], grid),
        rounds=3, iterations=1,
    )
    record("c3_weight_accuracy", {
        "claim": "C3: DFT(w) ~ rho(r) accuracy check",
        "domain": 2048.0,
        "rows": rows,
    })
