"""Warn when bench rows drift against a recorded baseline.

The bench harness writes one JSON row per experiment under
``benchmarks/out/`` (stamped by :func:`_helpers.write_bench_json` with
schema version, git rev and timestamp).  This script compares the
numeric leaves of those rows against a committed baseline snapshot and
warns on relative drift beyond a threshold (default 15%) — enough slack
to absorb machine noise, tight enough to flag real perf or accuracy
regressions before they land.

Usage::

    # record the current rows as the baseline
    python benchmarks/track_regressions.py --update

    # later: compare fresh rows against it (exit 0, warnings on stderr)
    python benchmarks/track_regressions.py

    # CI-style: non-zero exit when drift exceeds the threshold
    python benchmarks/track_regressions.py --strict

Only scalar numeric leaves are compared.  The ``bench`` provenance stamp
(timestamp, git rev) and the free-form ``obs_metrics`` context block are
excluded — they are measurement *metadata*, expected to change between
runs.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

HERE = Path(__file__).resolve().parent
DEFAULT_OUT = HERE / "out"
DEFAULT_BASELINE = HERE / "baseline.json"
DEFAULT_THRESHOLD = 0.15

#: Top-level keys that are provenance/context, not measurements.
SKIP_KEYS = {"bench", "obs_metrics"}


def flatten(doc: Any, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric scalar leaf."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            if not prefix and key in SKIP_KEYS:
                continue
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from flatten(value, f"{prefix}{i}.")
    elif isinstance(doc, bool):
        return
    elif isinstance(doc, (int, float)):
        yield prefix.rstrip("."), float(doc)


def load_rows(out_dir: Path) -> Dict[str, Dict[str, float]]:
    """Flattened numeric leaves of every ``*.json`` row in ``out_dir``."""
    rows: Dict[str, Dict[str, float]] = {}
    for path in sorted(out_dir.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"track_regressions: skipping {path.name}: {exc}",
                  file=sys.stderr)
            continue
        rows[path.name] = dict(flatten(doc))
    return rows


def compare(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    threshold: float,
) -> List[str]:
    """Human-readable drift warnings for leaves beyond ``threshold``."""
    warnings: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        base_row, cur_row = baseline[name], current[name]
        for key in sorted(set(base_row) & set(cur_row)):
            base, cur = base_row[key], cur_row[key]
            if not (math.isfinite(base) and math.isfinite(cur)):
                continue
            if base == 0.0:
                if cur != 0.0:
                    warnings.append(
                        f"{name}:{key} was 0, now {cur:.6g}")
                continue
            drift = (cur - base) / abs(base)
            if abs(drift) > threshold:
                warnings.append(
                    f"{name}:{key} drifted {drift:+.1%} "
                    f"({base:.6g} -> {cur:.6g})")
    for name in sorted(set(baseline) - set(current)):
        warnings.append(f"{name}: present in baseline, missing from out/")
    return warnings


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", type=Path, default=DEFAULT_OUT,
                        help="directory of fresh bench rows")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline snapshot JSON")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative drift warning threshold "
                             "(default 0.15)")
    parser.add_argument("--update", action="store_true",
                        help="record the current rows as the baseline")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when drift is found")
    args = parser.parse_args(argv)

    if not args.out_dir.is_dir():
        print(f"track_regressions: no bench rows at {args.out_dir}",
              file=sys.stderr)
        return 0
    current = load_rows(args.out_dir)

    if args.update:
        args.baseline.write_text(json.dumps(current, indent=2,
                                            sort_keys=True))
        print(f"track_regressions: baseline of {len(current)} row(s) "
              f"written to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"track_regressions: no baseline at {args.baseline}; "
              "run with --update to record one", file=sys.stderr)
        return 0
    baseline = json.loads(args.baseline.read_text())

    warnings = compare(baseline, current, args.threshold)
    for line in warnings:
        print(f"WARNING: {line}", file=sys.stderr)
    print(f"track_regressions: {len(current)} row(s) checked against "
          f"{len(baseline)} baseline row(s); "
          f"{len(warnings)} drift warning(s) at >{args.threshold:.0%}")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    raise SystemExit(main())
