"""Application bench (App. P) — propagation along inhomogeneous terrain.

The paper's introduction motivates surface generation with wireless
channel modelling: propagation characteristics "vary from place to
place" [ref 13] on inhomogeneous terrain, which empirical formulas like
Hata [ref 7] cannot capture.  This bench quantifies that on a Figure-1
style terrain:

* links of equal length crossing the *smooth* quadrant vs the *rough*
  quadrant see systematically different loss (the rough quadrant kills
  the coherent ground reflection and adds diffraction edges);
* the Hata open-area estimate is a single number for both, blind to the
  difference — the gap the paper's programme addresses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.figures import figure1_layout
from repro.propagation import evaluate_link, hata_loss_db

DOMAIN = 2048.0
FREQ = 915e6


@pytest.fixture(scope="module")
def surface():
    grid = Grid2D(nx=512, ny=512, lx=DOMAIN, ly=DOMAIN)
    layout = figure1_layout(domain=DOMAIN)
    return InhomogeneousGenerator(layout, grid, truncation=0.999).generate(
        seed=2009
    )


LINK_LENGTH = 500.0


def _sector_links(surface, quadrant_box, n_links, rng):
    """``n_links`` equal-length links sampled inside one quadrant box."""
    (x_lo, x_hi), (y_lo, y_hi) = quadrant_box
    losses = []
    los = []
    attempts = 0
    while len(losses) < n_links and attempts < 50 * n_links:
        attempts += 1
        a = (rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi))
        angle = rng.uniform(0, 2 * np.pi)
        b = (a[0] + LINK_LENGTH * np.cos(angle),
             a[1] + LINK_LENGTH * np.sin(angle))
        if not (x_lo <= b[0] <= x_hi and y_lo <= b[1] <= y_hi):
            continue
        link = evaluate_link(surface, a, b, FREQ, tx_height=2.0,
                             rx_height=1.2)
        losses.append(link.total_db)
        los.append(link.line_of_sight)
    return np.array(losses), np.array(los)


def test_bench_app_p_propagation(benchmark, surface, record):
    margin = 60.0
    half = DOMAIN / 2.0
    # Q1 (smooth: h = 1.0): the high-x high-y quadrant box
    q1_box = ((half + margin, DOMAIN - margin), (half + margin, DOMAIN - margin))
    # Q3 (rough: h = 2.0): the low-x low-y quadrant box
    q3_box = ((margin, half - margin), (margin, half - margin))
    smooth_losses, smooth_los = benchmark.pedantic(
        lambda: _sector_links(surface, q1_box, 60, np.random.default_rng(12)),
        rounds=1, iterations=1,
    )
    rough_losses, rough_los = _sector_links(surface, q3_box, 60,
                                            np.random.default_rng(13))
    assert smooth_losses.size >= 40 and rough_losses.size >= 40

    mean_smooth = float(np.mean(smooth_losses))
    mean_rough = float(np.mean(rough_losses))
    p90_smooth = float(np.percentile(smooth_losses, 90))
    p90_rough = float(np.percentile(rough_losses, 90))
    hata = float(hata_loss_db(np.array(1.0), FREQ / 1e6, 30.0, 2.0,
                              environment="open", strict=False))

    # the rough quadrant obstructs more often and loses more on average,
    # with the gap widest in the tail (worst-case links)
    assert rough_los.mean() < smooth_los.mean()
    assert mean_rough > mean_smooth + 1.0
    assert p90_rough > p90_smooth + 3.0

    record("app_p_propagation", {
        "application": "App P: links across smooth vs rough quadrants",
        "frequency_mhz": FREQ / 1e6,
        "link_length_m": LINK_LENGTH,
        "mean_loss_smooth_db": mean_smooth,
        "mean_loss_rough_db": mean_rough,
        "p90_loss_smooth_db": p90_smooth,
        "p90_loss_rough_db": p90_rough,
        "terrain_contrast_mean_db": mean_rough - mean_smooth,
        "terrain_contrast_p90_db": p90_rough - p90_smooth,
        "los_fraction_smooth": float(smooth_los.mean()),
        "los_fraction_rough": float(rough_los.mean()),
        "hata_open_db": hata,
        "note": "Hata returns one number regardless of quadrant - the "
                "terrain-blindness the paper's programme addresses",
    })
