"""Ablation A2 — tiled parallel generation (the ICPP angle).

The convolution method's locality makes domain decomposition exact and
communication-free given the counter-based noise plane.  This bench
generates a 2048^2 surface through the tile executor and compares the
serial and threaded backends (NumPy's FFT releases the GIL, so threads
scale without pickling overhead), verifying equality and reporting the
speedup and halo overhead for the chosen tile size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.parallel.executor import default_workers, generate_tiled
from repro.parallel.tiles import TilePlan

TOTAL = 2048
TILE = 512


@pytest.fixture(scope="module")
def gen():
    grid = Grid2D(nx=512, ny=512, lx=1024.0, ly=1024.0)
    return ConvolutionGenerator(
        GaussianSpectrum(h=1.0, clx=30.0, cly=30.0), grid, truncation=0.999
    )


def test_bench_a2_tiled_parallel(benchmark, gen, record):
    noise = BlockNoise(seed=7)
    plan = TilePlan(total_nx=TOTAL, total_ny=TOTAL, tile_nx=TILE, tile_ny=TILE)
    workers = default_workers()

    t0 = time.perf_counter()
    serial = generate_tiled(gen, noise, plan, backend="serial")
    t_serial = time.perf_counter() - t0

    threaded = benchmark.pedantic(
        lambda: generate_tiled(gen, noise, plan, backend="thread",
                               workers=workers),
        rounds=2, iterations=1,
    )
    assert np.array_equal(serial.heights, threaded.heights)
    assert serial.heights.std() == pytest.approx(1.0, rel=0.1)

    t_thread = benchmark.stats.stats.min
    record("a2_parallel_tiles", {
        "ablation": "A2: tiled generation, serial vs threaded",
        "total": [TOTAL, TOTAL],
        "tile": [TILE, TILE],
        "workers": workers,
        "halo_overhead": plan.halo_overhead(gen.footprint),
        "serial_s": t_serial,
        "thread_s": t_thread,
        "speedup": t_serial / t_thread,
    })
    if workers >= 2:
        # demand at least some parallel benefit when cores are available
        assert t_thread < t_serial * 1.05
