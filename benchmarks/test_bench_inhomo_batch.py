"""Batched multi-region bench — shared-forward engine vs the per-region path.

Acceptance criteria of the batched-engine PR: tiled generation of a
2048x2048 surface over an M=4 ``LayeredLayout`` with 129x129 kernels
must be >=2x faster through the batched ``apply_kernels_valid`` path
(one forward FFT per noise block + one inverse per *active* region)
than through the PR 1 per-region path (one full forward+inverse
``apply_kernel_valid`` round-trip, and one noise-window read, per
region per tile), with max abs deviation <= 1e-10 vs the spatial
oracle, recorded in ``benchmarks/out/inhomo_batch.json``.

The layout places three patch regions in the low corner of the domain,
so most tiles lie outside every transition band: the active-set query
(`WeightMap.support`) reduces those tiles to exactly one convolution,
which is where the batched engine's advantage compounds beyond the
transform arithmetic (4 fwd + 4 inv -> 1 fwd + 1 inv on 12 of 16
tiles).

The same run times the homogeneous default path (plan-cached
overlap-save vs the seed ``fftconvolve`` baseline) at the same size so
``benchmarks/check_engine_gate.py`` can enforce the <=10% no-regression
contract on this PR too.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.convolution import (
    ConvolutionGenerator,
    _apply_kernel_valid_fftconvolve,
    apply_kernel_valid,
    apply_kernel_valid_fft,
    apply_kernel_valid_spatial,
    noise_window_for,
)
from repro.core.engine import plan_cache
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator, blend_fields
from repro.core.rng import BlockNoise
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.fields.parameter_map import LayeredLayout, RegionSpec
from repro.fields.regions import Circle
from repro.parallel.executor import generate_tiled
from repro.parallel.tiles import TilePlan

SURFACE = 2048
TILE = 512
TRUNC = (64, 64)  # -> 129 x 129 kernels for every region
SPATIAL_SAMPLE = 128  # spatial-oracle sample edge (M kernels: keep small)


def _layout() -> LayeredLayout:
    """M=4 layout: three patches clustered so 12 of 16 tiles see only
    the background (outermost transition-band reach is < 1024 on both
    axes)."""
    return LayeredLayout(
        background=GaussianSpectrum(h=1.0, clx=24.0, cly=24.0),
        patches=[
            RegionSpec(Circle(cx=400.0, cy=400.0, radius=150.0),
                       ExponentialSpectrum(h=0.6, clx=16.0, cly=16.0),
                       half_width=50.0),
            RegionSpec(Circle(cx=700.0, cy=300.0, radius=120.0),
                       GaussianSpectrum(h=1.5, clx=32.0, cly=32.0),
                       half_width=40.0),
            RegionSpec(Circle(cx=300.0, cy=700.0, radius=120.0),
                       ExponentialSpectrum(h=0.8, clx=20.0, cly=12.0),
                       half_width=40.0),
        ],
    )


@pytest.fixture(scope="module")
def gen():
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=256.0)  # dx = 1
    return InhomogeneousGenerator(_layout(), grid, truncation=TRUNC,
                                  engine="fft")


def _per_region_window(gen, noise, x0, y0, nx, ny):
    """The PR 1 per-region path, replicated verbatim: one noise-window
    read and one forward+inverse FFT round-trip per region of the
    window's weight map, then the eqn-(37) blend."""
    win_grid = gen.grid.with_shape(nx, ny)
    origin = (x0 * gen.grid.dx, y0 * gen.grid.dy)
    wm = gen.layout.weight_map(win_grid, origin=origin)
    fields = []
    for spec in wm.spectra:
        kern = gen._kernel_for(spec)
        wx0, wy0, wnx, wny = noise_window_for(kern, x0, y0, nx, ny)
        window = noise.window(wx0, wy0, wnx, wny)
        fields.append(apply_kernel_valid(kern, window, engine=gen.engine))
    return blend_fields(wm.weights, fields)


def _time_tiled(plan, tile_fn):
    out = np.empty((plan.total_nx, plan.total_ny))
    t0 = time.perf_counter()
    for t in plan:
        out[t.x0 : t.x1, t.y0 : t.y1] = tile_fn(t)
    return out, time.perf_counter() - t0


def test_bench_inhomo_batch_speedup(benchmark, record, gen):
    kernels = [gen._kernel_for(s) for s in
               gen.layout.weight_map(gen.grid.with_shape(8, 8)).spectra]
    assert len(kernels) == 4
    assert all(k.shape == (129, 129) for k in kernels)

    noise = BlockNoise(seed=47)
    plan = TilePlan(total_nx=SURFACE, total_ny=SURFACE,
                    tile_nx=TILE, tile_ny=TILE)

    # Warm both code paths (kernel builds, scipy FFT workspaces).
    gen.generate_window(noise, 0, 0, TILE, TILE)
    _per_region_window(gen, noise, 0, 0, TILE, TILE)

    # --- batched engine (the generate_window default since this PR) ----
    plan_cache.clear()
    batched = generate_tiled(gen, noise, plan, backend="serial")
    cache_stats = plan_cache.stats().as_dict()
    _, t_batched = _time_tiled(
        plan, lambda t: gen.generate_window(noise, t.x0, t.y0,
                                            t.nx, t.ny).heights
    )

    # --- PR 1 baseline: per-region forward+inverse pairs ---------------
    per_region, t_per_region = _time_tiled(
        plan, lambda t: _per_region_window(gen, noise, t.x0, t.y0,
                                           t.nx, t.ny)
    )

    maxdev_paths = float(np.max(np.abs(batched.heights - per_region)))
    del per_region
    speedup = t_per_region / t_batched

    # --- spatial oracle on a sample window -----------------------------
    win_grid = gen.grid.with_shape(SPATIAL_SAMPLE, SPATIAL_SAMPLE)
    wm = gen.layout.weight_map(win_grid, origin=(0.0, 0.0))
    fields = []
    for spec in wm.spectra:
        kern = gen._kernel_for(spec)
        wx0, wy0, wnx, wny = noise_window_for(kern, 0, 0,
                                              SPATIAL_SAMPLE, SPATIAL_SAMPLE)
        fields.append(apply_kernel_valid_spatial(
            kern, noise.window(wx0, wy0, wnx, wny)))
    oracle = blend_fields(wm.weights, fields)
    maxdev_spatial = float(np.max(np.abs(
        batched.heights[:SPATIAL_SAMPLE, :SPATIAL_SAMPLE] - oracle
    )))

    # --- homogeneous no-regression probe at the same size --------------
    hom = ConvolutionGenerator(GaussianSpectrum(h=1.0, clx=24.0, cly=24.0),
                               gen.grid, truncation=TRUNC, engine="fft")

    def _hom_tiled(conv):
        elapsed = 0.0
        for t in plan:
            wx0, wy0, wnx, wny = noise_window_for(hom.kernel, t.x0, t.y0,
                                                  t.nx, t.ny)
            window = noise.window(wx0, wy0, wnx, wny)
            t0 = time.perf_counter()
            conv(hom.kernel, window)
            elapsed += time.perf_counter() - t0
        return elapsed

    _hom_tiled(apply_kernel_valid_fft)  # warm plans
    t_hom_fft = _hom_tiled(apply_kernel_valid_fft)
    t_hom_legacy = _hom_tiled(_apply_kernel_valid_fftconvolve)
    homogeneous_ratio = t_hom_fft / t_hom_legacy

    # timing-table entry: one warm mixed-region tile through the batched
    # engine
    benchmark.pedantic(
        lambda: gen.generate_window(noise, 0, 0, TILE, TILE),
        rounds=3, iterations=1,
    )

    regions = batched.provenance["regions"]
    record("inhomo_batch", {
        "claim": "batched multi-region engine >=2x over the per-region "
                 "path on M=4 LayeredLayout at 2048^2 / 129^2 kernels, "
                 "<=1e-10 deviation vs the spatial oracle",
        "surface": [SURFACE, SURFACE],
        "tile": [TILE, TILE],
        "kernel": [129, 129],
        "regions": 4,
        "tiles": len(plan),
        "timings_s": {
            "batched_tiled": t_batched,
            "per_region_tiled": t_per_region,
            "homogeneous_fft_tiled": t_hom_fft,
            "homogeneous_legacy_tiled": t_hom_legacy,
        },
        "speedup_batched_vs_per_region": speedup,
        "homogeneous_ratio": homogeneous_ratio,
        "max_abs_dev_batched_vs_per_region": maxdev_paths,
        "max_abs_dev_batched_vs_spatial_sample": maxdev_spatial,
        "spatial_sample_edge": SPATIAL_SAMPLE,
        "regions_provenance": regions,
        "batch_fft": batched.provenance["batch_fft"],
        "plan_cache": cache_stats,
    })

    assert speedup >= 2.0
    assert maxdev_spatial <= 1e-10
    assert maxdev_paths <= 1e-10  # same math, different FFT grouping
    assert homogeneous_ratio <= 1.10
    # active-set pruning: 12 of 16 tiles lie beyond every transition
    # band and convolve exactly one kernel
    assert regions["min_active"] == 1
    assert regions["single_kernel_tiles"] == 12
    assert regions["max_active"] >= 2
    # one plan per distinct spectrum, shared across tiles and regions
    assert cache_stats["misses"] == 4
