"""Extension bench E1 — 1D profile generation for propagation studies.

The paper's companion propagation work (FVTD/ray tracing, refs [8]-[12])
consumes 1D height profiles.  This bench verifies the 1D pipeline's
statistics and measures streaming throughput for transect-scale
generation (millions of samples), plus the marginal-spectrum identity:
a cut through a 2D surface has the Ky-marginal spectrum, not the 1D
family spectrum — the distinction matters when matching 1D studies to
2D terrain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.convolution import convolve_full
from repro.core.oned import (
    BlockNoise1D,
    Gaussian1D,
    ProfileGenerator,
    marginal_of_2d,
)
from repro.core.spectra import GaussianSpectrum


def test_bench_e1_profile_streaming(benchmark, record):
    spec = Gaussian1D(h=1.0, cl=25.0)
    gen = ProfileGenerator(spec, 8192, 8192.0, truncation=0.9999)
    noise = BlockNoise1D(seed=3)
    total = 1_000_000
    chunk = 65536

    def run():
        stds = []
        for x0 in range(0, total, chunk):
            win = gen.generate_window(noise, x0, chunk)
            stds.append(win.std())
        return np.array(stds)

    stds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.all(np.abs(stds - 1.0) < 0.1)

    elapsed = benchmark.stats.stats.mean
    record("e1_profile_streaming", {
        "extension": "E1: 1D profile streaming",
        "total_samples": total,
        "per_chunk_std_range": [float(stds.min()), float(stds.max())],
        "throughput_msamples_per_s": total / elapsed / 1e6,
    })


def test_bench_e1_marginal_identity(benchmark, record):
    """A 2D cut is statistically the marginal spectrum, verified end to end."""
    spec2d = GaussianSpectrum(h=1.0, clx=30.0, cly=30.0)
    grid = Grid2D(nx=1024, ny=256, lx=4096.0, ly=1024.0)
    m1d = benchmark.pedantic(
        lambda: marginal_of_2d(spec2d), rounds=1, iterations=1
    )

    # ensemble ACF of 2D cuts vs the marginal's predicted ACF
    # (lags chosen as exact multiples of dx = 4 so indices are exact)
    lags = np.array([0.0, 16.0, 32.0, 64.0])
    lag_idx = (lags / grid.dx).astype(int)
    acc = np.zeros(lags.size)
    n_real, n_cuts = 12, 16
    for seed in range(n_real):
        f = convolve_full(spec2d, grid, seed=700 + seed)
        for j in range(0, grid.ny, grid.ny // n_cuts):
            cut = f[:, j]
            cut = cut - cut.mean()
            n = cut.size
            acf = np.fft.ifft(np.abs(np.fft.fft(cut)) ** 2).real / n
            acc += acf[lag_idx]
    measured = acc / (n_real * n_cuts)
    predicted = np.array([float(m1d.autocorrelation(l)) for l in lags])
    # Gaussian family: the marginal ACF equals the 2D ACF along the cut
    # (the residual ~0.015 at long lags is the per-cut demeaning bias)
    assert np.allclose(measured, predicted, atol=0.05)
    record("e1_marginal_identity", {
        "extension": "E1: 2D-cut ACF equals the Ky-marginal prediction",
        "lags": lags.tolist(),
        "measured_acf": measured.tolist(),
        "predicted_acf": predicted.tolist(),
    })
