"""Extension bench E4 — parabolic-equation propagation over rough profiles.

The paper's stated future work: "simulate electromagnetic wave
propagation along the inhomogeneous RRSs".  This bench runs the
split-step PE solver (the standard full-wave-ish terrain-propagation
tool; the paper's own refs use FVTD for the same question) over
generated profiles and cross-checks the three propagation models in
this package on the same terrain:

* PE vs Deygout knife-edge on a shadowing profile (should agree within
  several dB — they model the same diffraction physics at different
  fidelities);
* PE over rough vs smooth profiles: roughness destroys the flat-ground
  two-ray lobing (the PE-level counterpart of the Rayleigh-factor
  argument used by the two-ray model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.oned import Gaussian1D, ProfileGenerator
from repro.propagation.deygout import deygout_loss_db
from repro.propagation.parabolic import (
    PEGrid,
    PESolver,
    propagation_factor,
)
from repro.propagation.profile import PathProfile

FREQ = 300e6
RANGE = 1000.0


def _pe_factor(terrain, rx_height: float, tx_height: float = 20.0) -> float:
    grid = PEGrid(z_max=400.0, nz=1024, dx=2.0)
    solver = PESolver(grid, FREQ, terrain=terrain)
    return propagation_factor(solver, RANGE, tx_height=tx_height,
                              rx_height=rx_height, beamwidth=4.0)


def test_bench_e4_pe_vs_deygout(benchmark, record):
    # a single 60 m ridge at mid-range
    ridge = lambda x: 60.0 * np.exp(-(((x - 500.0) / 50.0) ** 2))  # noqa: E731
    pf = benchmark.pedantic(
        lambda: _pe_factor(ridge, rx_height=20.0), rounds=1, iterations=1
    )
    pe_loss_db = -20.0 * np.log10(max(pf, 1e-12))

    xs = np.linspace(0.0, RANGE, 501)
    prof = PathProfile(
        distances=xs,
        ground=np.array([ridge(x) for x in xs]),
        tx_height=20.0, rx_height=20.0,
    )
    single_edge = deygout_loss_db(prof, FREQ, max_edges=1).loss_db
    triple_edge = deygout_loss_db(prof, FREQ, max_edges=3).loss_db

    # A wide smooth ridge is the known hard case for knife-edge models:
    # a single thin screen underestimates the loss, the 3-edge Deygout
    # construction overestimates it.  The full-wave PE answer must land
    # between the two brackets (with a small margin for the ground
    # lobing the knife-edge models ignore).
    assert single_edge - 3.0 < pe_loss_db < triple_edge + 3.0
    record("e4_pe_vs_deygout", {
        "extension": "E4: PE bracketed by knife-edge bounds on a ridge",
        "frequency_mhz": FREQ / 1e6,
        "pe_excess_loss_db": float(pe_loss_db),
        "deygout_single_edge_db": float(single_edge),
        "deygout_triple_edge_db": float(triple_edge),
    })


def test_bench_e4_roughness_kills_lobing(benchmark, record):
    """Rough ground destroys the deterministic two-ray lobing pattern."""
    grid = PEGrid(z_max=400.0, nz=1024, dx=2.0)
    rx_heights = np.linspace(6.0, 60.0, 28)

    def pattern(terrain) -> np.ndarray:
        solver = PESolver(grid, FREQ, terrain=terrain)
        return np.array([
            propagation_factor(solver, RANGE, tx_height=20.0,
                               rx_height=float(h), beamwidth=4.0)
            for h in rx_heights
        ])

    flat = benchmark.pedantic(lambda: pattern(None), rounds=1, iterations=1)

    gen = ProfileGenerator(Gaussian1D(h=4.0, cl=20.0), 2048, 2048.0)
    z_prof = gen.generate(seed=9)[:1024]
    z_prof = z_prof - z_prof.min() + 0.1  # keep ground inside the domain
    xs = np.arange(1024) * 2.0
    rough = pattern(lambda x: float(np.interp(x, xs, z_prof)))

    def lobing_strength(pf: np.ndarray) -> float:
        # high-pass the height pattern: lobing is the oscillatory part,
        # terrain shadowing the slow trend
        smooth = np.convolve(pf, np.ones(7) / 7.0, mode="same")
        return float(np.std((pf - smooth)[3:-3]))

    s_flat = lobing_strength(flat)
    s_rough = lobing_strength(rough)
    assert flat.max() - flat.min() > 1.2  # deterministic lobes exist
    assert s_rough < 0.7 * s_flat
    record("e4_roughness_lobing", {
        "extension": "E4: roughness destroys two-ray lobing (PE level)",
        "flat_pf_range": [float(flat.min()), float(flat.max())],
        "rough_pf_range": [float(rough.min()), float(rough.max())],
        "flat_lobing_strength": s_flat,
        "rough_lobing_strength": s_rough,
    })
