"""Claim C4 — arbitrarily long surfaces by successive computation.

Paper Section 2.4, advantage (a): "once the weighting array is computed,
we can generate any size of continuous RRSs because we can choose Nx and
Ny arbitrarily".

This bench streams a surface 16x longer than the kernel-construction
grid, verifies strips join seamlessly (equal to the one-shot windowed
computation to FFT rounding) and that per-strip statistics stay
stationary, and reports the streaming throughput in samples/second.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import bench_n

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum
from repro.parallel.streaming import assemble_strips, stream_strips


@pytest.fixture(scope="module")
def gen():
    grid = Grid2D(nx=512, ny=512, lx=1024.0, ly=1024.0)
    return ConvolutionGenerator(
        GaussianSpectrum(h=1.0, clx=30.0, cly=30.0), grid, truncation=0.999
    )


def test_bench_c4_streaming(benchmark, gen, record):
    noise = BlockNoise(seed=99)
    total_nx = 16 * 512
    width = 512
    strip = 512

    def run():
        stds = []
        for s in stream_strips(gen, noise, total_nx=total_nx,
                               width_ny=width, strip_nx=strip):
            stds.append(s.height_std())
        return np.array(stds)

    stds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stds.shape == (16,)
    # stationarity along the transect: every strip realises h = 1
    assert np.all(np.abs(stds - 1.0) < 0.15)
    assert stds.std() / stds.mean() < 0.05

    # seamlessness at one seam (strip boundary at x = 512)
    seam = gen.generate_window(noise, 512 - 64, 0, 128, width)
    left = next(stream_strips(gen, noise, total_nx=512, width_ny=width,
                              strip_nx=512))
    right = next(stream_strips(gen, noise, total_nx=512, width_ny=width,
                               strip_nx=512, x0=512))
    joined = np.concatenate(
        [left.heights[512 - 64 :, :], right.heights[:64, :]], axis=0
    )
    err = float(np.max(np.abs(joined - seam)))
    assert err < 1e-9

    elapsed = benchmark.stats.stats.mean
    record("c4_streaming", {
        "claim": "C4: unbounded surfaces by successive computation",
        "total_samples": total_nx * width,
        "strip_stds": stds.tolist(),
        "seam_max_abs_error": err,
        "throughput_msamples_per_s": total_nx * width / elapsed / 1e6,
    })
