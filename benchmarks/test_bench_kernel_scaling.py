"""Claim C2 — computation time scales with the kernel (correlation) size.

Paper Section 4: "The computation time of the present algorithm depends
strongly on the correlation length, because it is proportional to the
size of the weighting array ... When we simulate a RRS with a large
correlation length, we need much computation time" — and conversely,
"we can reduce the size of the weighting array to save computation time
when the correlation length of a RRS is small" (Section 2.4).

This bench measures windowed-generation time as a function of (a) the
correlation length at fixed truncation energy, and (b) the truncation
energy at fixed correlation length, and verifies the claimed trend plus
the truncation's variance error bound.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import bench_n

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise
from repro.core.spectra import GaussianSpectrum

CLS = [10.0, 20.0, 40.0, 80.0]
ENERGY = [0.90, 0.99, 0.999, 0.9999]


@pytest.fixture(scope="module")
def grid():
    return Grid2D(nx=512, ny=512, lx=1024.0, ly=1024.0)


def _time_windowed(gen, n_out: int, repeats: int = 3) -> float:
    noise = BlockNoise(seed=5)
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        gen.generate_window(noise, 0, 0, n_out, n_out)
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_c2_kernel_vs_correlation_length(benchmark, grid, record):
    rows = []
    for cl in CLS:
        spec = GaussianSpectrum(h=1.0, clx=cl, cly=cl)
        gen = ConvolutionGenerator(spec, grid, truncation=0.999)
        rows.append({
            "cl": cl,
            "kernel": list(gen.footprint),
            "time_s": _time_windowed(gen, 256),
        })
    # the paper's trend: footprint grows ~ linearly with cl ...
    sizes = [r["kernel"][0] for r in rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 4 * sizes[0]
    # ... and large-cl generation costs more than small-cl generation
    assert rows[-1]["time_s"] > rows[0]["time_s"]

    # benchmark the largest-kernel case for the timing table
    spec = GaussianSpectrum(h=1.0, clx=CLS[-1], cly=CLS[-1])
    gen = ConvolutionGenerator(spec, grid, truncation=0.999)
    noise = BlockNoise(seed=5)
    benchmark.pedantic(
        lambda: gen.generate_window(noise, 0, 0, 256, 256),
        rounds=3, iterations=1,
    )
    record("c2_kernel_vs_cl", {
        "claim": "C2: cost tracks kernel size, which tracks correlation length",
        "truncation_energy": 0.999,
        "rows": rows,
    })


def test_bench_c2_truncation_tradeoff(benchmark, grid, record):
    spec = GaussianSpectrum(h=1.0, clx=40.0, cly=40.0)
    full = ConvolutionGenerator(spec, grid, truncation=None)
    noise_field = np.random.default_rng(11).standard_normal(grid.shape)
    reference = full.generate(noise=noise_field, exact=True)

    rows = []
    for e in ENERGY:
        gen = ConvolutionGenerator(spec, grid, truncation=e)
        approx = gen.generate(noise=noise_field)
        err = float(
            np.sqrt(np.mean((approx - reference) ** 2)) / reference.std()
        )
        rows.append({
            "energy": e,
            "kernel": list(gen.footprint),
            "rms_rel_error": err,
            "time_s": _time_windowed(gen, 256),
        })
    # tighter truncation -> bigger kernel, smaller error
    errs = [r["rms_rel_error"] for r in rows]
    assert errs == sorted(errs, reverse=True)
    assert errs[-1] < 0.02  # 99.99% energy: <2% RMS deviation
    assert rows[0]["kernel"][0] < rows[-1]["kernel"][0]

    gen90 = ConvolutionGenerator(spec, grid, truncation=0.90)
    noise = BlockNoise(seed=5)
    benchmark.pedantic(
        lambda: gen90.generate_window(noise, 0, 0, 256, 256),
        rounds=3, iterations=1,
    )
    record("c2_truncation_tradeoff", {
        "claim": "C2: truncation trades bounded error for speed",
        "cl": 40.0,
        "rows": rows,
    })
